package loadgen

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RunnerConfig tunes the open-loop scheduler.
type RunnerConfig struct {
	// Rate is the target mean arrival rate in ops/second (Poisson
	// arrivals: exponential gaps). Required, > 0.
	Rate float64
	// MaxInFlight bounds concurrently executing ops (default 64).
	MaxInFlight int
	// MaxQueue bounds ops waiting for an in-flight slot (default
	// 4*MaxInFlight). Arrivals beyond it are shed and counted — an
	// overloaded target shows up as sheds and inflated latencies, never
	// as a silently reduced offered rate.
	MaxQueue int
	// Seed drives the arrival-time jitter (independent of the stream's
	// op content).
	Seed int64
	// OpTimeout is the per-operation context deadline (default 30s).
	OpTimeout time.Duration
	// IsRejected classifies an op error as a server-side overload
	// rejection (e.g. transport.ErrOverloaded after retries). Rejected
	// ops are counted separately from errors and excluded from the
	// latency histograms: a shedding server is the overload design
	// working, not the cluster failing, and it must not be conflated
	// with either client-queue sheds or real errors. nil: no ops are
	// classified as rejected.
	IsRejected func(error) bool
	// Clock defaults to RealClock; tests inject a FakeClock.
	Clock Clock
}

func (c *RunnerConfig) fillDefaults() {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock
	}
}

// opAgg accumulates one op kind's outcomes.
type opAgg struct {
	hist     *obs.Histogram
	count    atomic.Uint64
	errors   atomic.Uint64
	skipped  atomic.Uint64
	rejected atomic.Uint64
	firstErr atomic.Value // string
}

// secAgg accumulates one timeline second.
type secAgg struct {
	issued, done, errors, shed, rejected uint64
	hist                                 *obs.Histogram
}

// Runner executes a Stream against a Target with open-loop pacing.
//
// The dispatcher draws Poisson arrival times and hands each op to a
// goroutine at its scheduled instant; the goroutine waits for one of
// MaxInFlight slots and executes. Latency is measured from the
// *scheduled* arrival to completion, so time spent waiting for a slot
// (back-pressure from a slow cluster) is part of the recorded latency —
// the coordinated-omission-safe discipline of open-loop harnesses.
type Runner struct {
	target Target
	cfg    RunnerConfig

	ledger *Ledger
	ops    map[OpKind]*opAgg
	shed   atomic.Uint64

	tlMu sync.Mutex
	tl   map[int]*secAgg
}

// NewRunner builds a runner; cfg.Rate must be positive.
func NewRunner(target Target, cfg RunnerConfig) (*Runner, error) {
	if cfg.Rate <= 0 {
		return nil, errors.New("loadgen: runner needs a positive rate")
	}
	cfg.fillDefaults()
	r := &Runner{
		target: target,
		cfg:    cfg,
		ledger: NewLedger(),
		ops:    make(map[OpKind]*opAgg),
		tl:     make(map[int]*secAgg),
	}
	for _, k := range []OpKind{OpInsert, OpSearch, OpDelete} {
		r.ops[k] = &opAgg{hist: obs.NewHistogram()}
	}
	return r, nil
}

// Ledger exposes the acknowledgement ledger (for the post-run audit).
func (r *Runner) Ledger() *Ledger { return r.ledger }

// RunResult is a completed run's raw measurements.
type RunResult struct {
	Start   time.Time
	Elapsed time.Duration
	Ops     map[string]OpStats
	Shed    uint64
	// Timeline is the per-second view: offered/completed ops, errors,
	// sheds, and that second's p99, ordered by offset. Split storms
	// show up as localized latency spikes here.
	Timeline []Second
	Ledger   *Ledger
}

// Run consumes the stream to exhaustion (or ctx cancellation, which
// stops dispatching but drains in-flight ops) and returns the
// measurements.
func (r *Runner) Run(ctx context.Context, stream *Stream) (*RunResult, error) {
	clock := r.cfg.Clock
	start := clock.Now()
	next := start
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	sem := make(chan struct{}, r.cfg.MaxInFlight)
	var queued atomic.Int64
	var wg sync.WaitGroup

	for ctx.Err() == nil {
		op, ok := stream.Next()
		if !ok {
			break
		}
		gap := time.Duration(rng.ExpFloat64() / r.cfg.Rate * float64(time.Second))
		next = next.Add(gap)
		if d := next.Sub(clock.Now()); d > 0 {
			clock.Sleep(d)
		}
		sched := next
		slot := int(sched.Sub(start) / time.Second)
		if queued.Load() >= int64(r.cfg.MaxQueue) {
			r.shed.Add(1)
			r.second(slot, func(s *secAgg) { s.issued++; s.shed++ })
			continue
		}
		r.second(slot, func(s *secAgg) { s.issued++ })
		queued.Add(1)
		wg.Add(1)
		go func(op Op, sched time.Time) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			queued.Add(-1)
			err, skipped := r.execute(ctx, op)
			now := clock.Now()
			lat := now.Sub(sched)
			agg := r.ops[op.Kind]
			if skipped {
				agg.skipped.Add(1)
				return
			}
			if err != nil && r.cfg.IsRejected != nil && r.cfg.IsRejected(err) {
				agg.rejected.Add(1)
				r.second(int(now.Sub(start)/time.Second), func(s *secAgg) { s.rejected++ })
				return
			}
			agg.count.Add(1)
			agg.hist.Observe(int64(lat))
			if err != nil {
				agg.errors.Add(1)
				agg.firstErr.CompareAndSwap(nil, err.Error())
			}
			done := int(now.Sub(start) / time.Second)
			r.second(done, func(s *secAgg) {
				s.done++
				if err != nil {
					s.errors++
				}
				if s.hist == nil {
					s.hist = obs.NewHistogram()
				}
				s.hist.Observe(int64(lat))
			})
		}(op, sched)
	}
	wg.Wait()
	elapsed := clock.Now().Sub(start)
	return r.result(start, elapsed), ctx.Err()
}

// execute performs one op and updates the ledger with its acknowledged
// outcome. skipped deletes (target record not acknowledged live) are
// not sent and not measured.
func (r *Runner) execute(ctx context.Context, op Op) (err error, skipped bool) {
	opCtx, cancel := context.WithTimeout(ctx, r.cfg.OpTimeout)
	defer cancel()
	switch op.Kind {
	case OpInsert:
		r.ledger.MarkPending(op.RID)
		err = r.target.Insert(opCtx, op.RID, op.Content)
		if err == nil {
			r.ledger.MarkLive(op.RID)
		} else {
			r.ledger.MarkFailed(op.RID)
		}
	case OpSearch:
		_, err = r.target.Search(opCtx, op.Query)
	case OpDelete:
		if !r.ledger.BeginDelete(op.RID) {
			return nil, true
		}
		err = r.target.Delete(opCtx, op.RID)
		if err == nil {
			r.ledger.MarkDeleted(op.RID)
		} else {
			r.ledger.MarkUncertain(op.RID)
		}
	}
	return err, false
}

func (r *Runner) second(slot int, fn func(*secAgg)) {
	if slot < 0 {
		slot = 0
	}
	r.tlMu.Lock()
	s := r.tl[slot]
	if s == nil {
		s = &secAgg{}
		r.tl[slot] = s
	}
	fn(s)
	r.tlMu.Unlock()
}

func (r *Runner) result(start time.Time, elapsed time.Duration) *RunResult {
	res := &RunResult{
		Start:   start,
		Elapsed: elapsed,
		Ops:     make(map[string]OpStats, len(r.ops)),
		Shed:    r.shed.Load(),
		Ledger:  r.ledger,
	}
	for kind, agg := range r.ops {
		if agg.count.Load() == 0 && agg.skipped.Load() == 0 && agg.rejected.Load() == 0 {
			continue
		}
		st := opStatsFromHistogram(agg.hist, agg.count.Load(), agg.errors.Load(), agg.skipped.Load())
		st.Rejected = agg.rejected.Load()
		if msg, ok := agg.firstErr.Load().(string); ok {
			st.FirstError = msg
		}
		res.Ops[kind.String()] = st
	}
	r.tlMu.Lock()
	slots := make([]int, 0, len(r.tl))
	for s := range r.tl {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, slot := range slots {
		agg := r.tl[slot]
		sec := Second{
			Offset:   slot,
			Issued:   agg.issued,
			Done:     agg.done,
			Errors:   agg.errors,
			Shed:     agg.shed,
			Rejected: agg.rejected,
		}
		if agg.hist != nil {
			snap := agg.hist.Snapshot()
			sec.P50Ns = snap.P50
			sec.P99Ns = snap.P99
			sec.MaxNs = snap.Max
		}
		res.Timeline = append(res.Timeline, sec)
	}
	r.tlMu.Unlock()
	return res
}
