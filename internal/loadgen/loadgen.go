// Package loadgen is the production-traffic soak harness for the
// encrypted searchable SDDS: an open-loop load generator that drives a
// cluster through LH* growth under a configurable insert/search/delete
// mix with zipfian query popularity, measures end-to-end latency the
// coordinated-omission-safe way, audits the cluster for record loss
// afterwards, and turns the measurements into declarative SLO gates.
//
// The pieces compose as a pipeline:
//
//	Stream  — a deterministic (seeded) sequence of operations: which
//	          record to insert, which query to search, which record to
//	          delete. Identical seeds replay identical streams.
//	Runner  — the open-loop scheduler: Poisson arrivals at a target
//	          rate, a bounded in-flight window, and latency measured
//	          from each op's *scheduled* arrival time, so a stalled
//	          server inflates the recorded latencies instead of
//	          silently slowing the offered load (the coordinated
//	          omission trap).
//	Ledger  — the runner's record of what the cluster acknowledged;
//	          the ground truth the post-soak audit checks against.
//	Audit   — a full read-back of every acknowledged-live record (plus
//	          search spot checks), counting missing and corrupt
//	          records: the zero-loss verification behind `loss == 0`.
//	Report  — the BENCH_cluster.json schema: per-op quantiles,
//	          split/IAM/retry counters, a per-second timeline, and the
//	          audit verdict, merged into the file's profile history.
//	Gates   — declarative SLOs ("search.p99 < 250ms", "loss == 0",
//	          "search.p99 <= prev*1.5") evaluated against a report and
//	          the previous run's baseline.
//
// The paper (ICDE 2006 §6) evaluates the scheme with small-scale
// microbenchmarks; this package is how the reproduction measures the
// ROADMAP's "heavy traffic from millions of users" claim as a
// repeatable, gated scenario.
package loadgen

import (
	"context"
	"errors"
	"fmt"
)

// OpKind is the type of one generated operation.
type OpKind uint8

const (
	// OpInsert stores a fresh record.
	OpInsert OpKind = iota
	// OpSearch runs a substring search from the zipfian query pool.
	OpSearch
	// OpDelete removes a previously inserted record.
	OpDelete
)

// String implements fmt.Stringer; the names double as the op keys in
// Report.Ops and in gate metrics ("search.p99").
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpSearch:
		return "search"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Op is one scheduled operation of a stream.
type Op struct {
	// Index is the op's position in the stream (0-based).
	Index int
	// Kind selects which Target method the runner calls.
	Kind OpKind
	// RID is the record identifier for inserts and deletes.
	RID uint64
	// Content is the record body for inserts.
	Content []byte
	// Query is the search substring for searches.
	Query []byte
}

// Mix fixes the operation mix as integer percentages summing to 100.
type Mix struct {
	InsertPct int
	SearchPct int
	DeletePct int
}

// DefaultMix is the soak default: insert-heavy so the file keeps
// growing (and splitting) for the whole run.
var DefaultMix = Mix{InsertPct: 70, SearchPct: 25, DeletePct: 5}

func (m Mix) validate() error {
	if m.InsertPct < 0 || m.SearchPct < 0 || m.DeletePct < 0 {
		return errors.New("loadgen: negative mix percentage")
	}
	if m.InsertPct+m.SearchPct+m.DeletePct != 100 {
		return fmt.Errorf("loadgen: mix %d/%d/%d does not sum to 100",
			m.InsertPct, m.SearchPct, m.DeletePct)
	}
	return nil
}

// String renders the mix as "insert/search/delete" percentages.
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d", m.InsertPct, m.SearchPct, m.DeletePct)
}

// ParseMix inverts Mix.String ("70/25/5").
func ParseMix(s string) (Mix, error) {
	var m Mix
	if _, err := fmt.Sscanf(s, "%d/%d/%d", &m.InsertPct, &m.SearchPct, &m.DeletePct); err != nil {
		return Mix{}, fmt.Errorf("loadgen: mix %q: want insert/search/delete percentages", s)
	}
	return m, m.validate()
}

// ErrNotFound is the sentinel a Target's Get and Delete must return
// (possibly wrapped) for an absent record, so the audit can tell
// "record lost" apart from "cluster unreachable".
var ErrNotFound = errors.New("loadgen: record not found")

// Target is the store surface the generator drives. esdds.Store
// satisfies it through a thin adapter fixing the search mode (see
// cmd/esdds-soak); tests drive fakes and raw sdds clusters.
type Target interface {
	Insert(ctx context.Context, rid uint64, content []byte) error
	Search(ctx context.Context, query []byte) ([]uint64, error)
	Delete(ctx context.Context, rid uint64) error
	Get(ctx context.Context, rid uint64) ([]byte, error)
}
