package loadgen

import (
	"sort"
	"sync"
)

// recState tracks one record through the soak from the client's point
// of view. Only acknowledged transitions count: the audit's ground
// truth is what the cluster told us it did.
type recState uint8

const (
	statePending   recState = iota // insert issued, not yet acknowledged
	stateLive                      // insert acknowledged
	stateFailed                    // insert failed: record not expected
	stateDeleting                  // delete issued for a live record
	stateDeleted                   // delete acknowledged
	stateUncertain                 // delete errored: may or may not have applied
)

// Ledger records the acknowledged fate of every record a run touched.
// It is safe for concurrent use by the runner's op goroutines, and is
// what the post-soak audit reads back against.
type Ledger struct {
	mu    sync.Mutex
	state map[uint64]recState
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{state: make(map[uint64]recState)}
}

func (l *Ledger) set(rid uint64, st recState) {
	l.mu.Lock()
	l.state[rid] = st
	l.mu.Unlock()
}

// MarkPending records an insert in flight.
func (l *Ledger) MarkPending(rid uint64) { l.set(rid, statePending) }

// MarkLive records an acknowledged insert: the cluster owes us this
// record until an acknowledged delete.
func (l *Ledger) MarkLive(rid uint64) { l.set(rid, stateLive) }

// MarkFailed records a failed insert.
func (l *Ledger) MarkFailed(rid uint64) { l.set(rid, stateFailed) }

// BeginDelete claims a live record for deletion. It reports false when
// the record is not (yet) acknowledged live — the runner then skips the
// delete instead of racing its own in-flight insert.
func (l *Ledger) BeginDelete(rid uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state[rid] != stateLive {
		return false
	}
	l.state[rid] = stateDeleting
	return true
}

// MarkDeleted records an acknowledged delete.
func (l *Ledger) MarkDeleted(rid uint64) { l.set(rid, stateDeleted) }

// MarkUncertain records a failed delete: the record's fate is unknown,
// so the audit must not count it either way.
func (l *Ledger) MarkUncertain(rid uint64) { l.set(rid, stateUncertain) }

// LedgerCounts summarizes a ledger.
type LedgerCounts struct {
	Live      int `json:"live"`
	Deleted   int `json:"deleted"`
	Failed    int `json:"failed"`
	Uncertain int `json:"uncertain"`
}

// Counts tallies the ledger by state. Records whose op was still in
// flight at cutoff (pending inserts, mid-flight deletes) count as
// uncertain — the runner drains all ops before reporting, so normally
// none remain.
func (l *Ledger) Counts() LedgerCounts {
	l.mu.Lock()
	defer l.mu.Unlock()
	var c LedgerCounts
	for _, st := range l.state {
		switch st {
		case stateLive:
			c.Live++
		case stateDeleted:
			c.Deleted++
		case stateFailed:
			c.Failed++
		default:
			c.Uncertain++
		}
	}
	return c
}

// Live returns the rids the cluster must still hold, sorted ascending
// (chunk-local for the audit's content regeneration). Records mid-
// delete at cutoff are excluded: their fate is uncertain.
func (l *Ledger) Live() []uint64 {
	l.mu.Lock()
	out := make([]uint64, 0, len(l.state))
	for rid, st := range l.state {
		if st == stateLive {
			out = append(out, rid)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Deleted returns the rids the cluster acknowledged deleting, sorted.
func (l *Ledger) Deleted() []uint64 {
	l.mu.Lock()
	out := make([]uint64, 0, len(l.state))
	for rid, st := range l.state {
		if st == stateDeleted {
			out = append(out, rid)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
