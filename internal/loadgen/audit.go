package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// AuditConfig tunes the post-soak verification pass.
type AuditConfig struct {
	// Concurrency is the number of parallel readers (default 16).
	Concurrency int
	// SearchChecks is the number of search spot checks (default 32):
	// records whose own surname is searched for, asserting the record
	// appears in the hit set (the scheme guarantees no false negatives).
	// Negative disables the phase (for targets without search).
	SearchChecks int
	// MinQueryLen skips spot checks whose surname is below the store's
	// minimum searchable length (default 7, matching StreamConfig).
	MinQueryLen int
}

func (c *AuditConfig) fillDefaults() {
	if c.Concurrency == 0 {
		c.Concurrency = 16
	}
	if c.SearchChecks == 0 {
		c.SearchChecks = 32
	}
	if c.MinQueryLen == 0 {
		c.MinQueryLen = 7
	}
}

// AuditResult is the verdict of the post-soak read-back: the evidence
// behind the `loss == 0` SLO gate.
type AuditResult struct {
	// Checked is the number of acknowledged-live records read back.
	Checked int `json:"checked"`
	// Missing counts live records the cluster no longer returns.
	Missing int `json:"missing"`
	// Corrupt counts live records whose content no longer matches the
	// deterministic corpus.
	Corrupt int `json:"corrupt"`
	// GhostsChecked / Ghosts cover acknowledged deletes: a ghost is a
	// deleted record that is still readable.
	GhostsChecked int `json:"ghosts_checked"`
	Ghosts        int `json:"ghosts"`
	// SearchChecks / SearchMisses cover the no-false-negative spot
	// checks.
	SearchChecks int `json:"search_checks"`
	SearchMisses int `json:"search_misses"`
	// Errors counts reads that failed for reasons other than absence
	// (transport trouble): the audit could not reach a verdict for them.
	Errors     int     `json:"errors"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// FirstProblem describes the first missing/corrupt/ghost/miss seen.
	FirstProblem string `json:"first_problem,omitempty"`
}

// Loss is the number of acknowledged-live records provably not served
// back intact — the `loss` gate metric.
func (a *AuditResult) Loss() int { return a.Missing + a.Corrupt }

// Clean reports whether the audit found nothing wrong at all.
func (a *AuditResult) Clean() bool {
	return a.Loss() == 0 && a.Ghosts == 0 && a.SearchMisses == 0 && a.Errors == 0
}

// auditCounters is the concurrency-safe scratch state of a running
// audit.
type auditCounters struct {
	missing, corrupt, ghosts, misses, errs atomic.Int64

	mu    sync.Mutex
	first string
}

func (c *auditCounters) problem(format string, args ...any) {
	c.mu.Lock()
	if c.first == "" {
		c.first = fmt.Sprintf(format, args...)
	}
	c.mu.Unlock()
}

type auditItem struct {
	rid    uint64
	expect []byte // live read-back: expected content; ghosts: nil
	query  []byte // search spot check: surname to search for
}

// RunAudit reads back every record the ledger says the cluster owes us
// (with contents regenerated from the stream's deterministic corpus),
// probes acknowledged deletes for ghosts, and runs search spot checks.
// The stream is only used from the dispatching goroutine — its chunk
// cache is not concurrency-safe — while reads fan out over
// cfg.Concurrency workers.
func RunAudit(ctx context.Context, target Target, stream *Stream, ledger *Ledger, cfg AuditConfig) (*AuditResult, error) {
	cfg.fillDefaults()
	start := time.Now()
	res := &AuditResult{}
	var ctr auditCounters

	live := ledger.Live()
	deleted := ledger.Deleted()

	// Phase 1: full read-back of acknowledged-live records. Live() is
	// sorted, so content regeneration walks corpus chunks in order.
	items := make([]auditItem, 0, len(live))
	for _, rid := range live {
		items = append(items, auditItem{rid: rid, expect: append([]byte(nil), stream.ContentOf(rid)...)})
	}
	err := auditFan(ctx, cfg.Concurrency, items, func(it auditItem) {
		data, err := target.Get(ctx, it.rid)
		switch {
		case errors.Is(err, ErrNotFound):
			ctr.missing.Add(1)
			ctr.problem("record %d acknowledged live but missing", it.rid)
		case err != nil:
			ctr.errs.Add(1)
			ctr.problem("record %d unreadable: %v", it.rid, err)
		case !bytes.Equal(data, it.expect):
			ctr.corrupt.Add(1)
			ctr.problem("record %d corrupt: got %d bytes, want %d", it.rid, len(data), len(it.expect))
		}
	})
	res.Checked = len(items)
	if err != nil {
		return finishAudit(res, &ctr, start), err
	}

	// Phase 2: acknowledged deletes must stay gone.
	items = items[:0]
	for _, rid := range deleted {
		items = append(items, auditItem{rid: rid})
	}
	err = auditFan(ctx, cfg.Concurrency, items, func(it auditItem) {
		_, err := target.Get(ctx, it.rid)
		switch {
		case errors.Is(err, ErrNotFound):
			// expected
		case err != nil:
			ctr.errs.Add(1)
			ctr.problem("deleted record %d probe failed: %v", it.rid, err)
		default:
			ctr.ghosts.Add(1)
			ctr.problem("record %d acknowledged deleted but still readable", it.rid)
		}
	})
	res.GhostsChecked = len(items)
	if err != nil {
		return finishAudit(res, &ctr, start), err
	}

	// Phase 3: no-false-negative spot checks — search a sample of live
	// records' own surnames and require each record in its hit set.
	items = items[:0]
	if len(live) > 0 {
		for i := 0; i < cfg.SearchChecks; i++ {
			rid := live[i*len(live)/cfg.SearchChecks]
			surname := firstToken(stream.ContentOf(rid))
			if len(surname) < cfg.MinQueryLen {
				continue
			}
			items = append(items, auditItem{rid: rid, query: append([]byte(nil), surname...)})
		}
	}
	err = auditFan(ctx, cfg.Concurrency, items, func(it auditItem) {
		hits, err := target.Search(ctx, it.query)
		if err != nil {
			ctr.errs.Add(1)
			ctr.problem("spot search %q failed: %v", it.query, err)
			return
		}
		for _, h := range hits {
			if h == it.rid {
				return
			}
		}
		ctr.misses.Add(1)
		ctr.problem("record %d not in hit set for its own surname %q", it.rid, it.query)
	})
	res.SearchChecks = len(items)
	return finishAudit(res, &ctr, start), err
}

func finishAudit(res *AuditResult, ctr *auditCounters, start time.Time) *AuditResult {
	res.Missing = int(ctr.missing.Load())
	res.Corrupt = int(ctr.corrupt.Load())
	res.Ghosts = int(ctr.ghosts.Load())
	res.SearchMisses = int(ctr.misses.Load())
	res.Errors = int(ctr.errs.Load())
	res.ElapsedSec = time.Since(start).Seconds()
	ctr.mu.Lock()
	res.FirstProblem = ctr.first
	ctr.mu.Unlock()
	return res
}

// auditFan runs fn over items with bounded concurrency, stopping early
// on context cancellation.
func auditFan(ctx context.Context, workers int, items []auditItem, fn func(auditItem)) error {
	ch := make(chan auditItem)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range ch {
				if ctx.Err() != nil {
					continue
				}
				fn(it)
			}
		}()
	}
	var err error
feed:
	for _, it := range items {
		select {
		case ch <- it:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(ch)
	wg.Wait()
	return err
}

// firstToken extracts the leading surname from a formatted phonebook
// record ("SURNAME REST%%%…%PHONE$").
func firstToken(content []byte) []byte {
	for i, b := range content {
		if b == ' ' || b == '%' || b == '$' {
			return content[:i]
		}
	}
	return content
}
