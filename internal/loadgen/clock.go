package loadgen

import (
	"sync"
	"time"
)

// Clock abstracts time for the open-loop scheduler so its pacing can be
// tested deterministically: the runner only ever asks what time it is
// and sleeps until the next scheduled arrival.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock is the wall clock.
var RealClock Clock = realClock{}

// FakeClock is a manually driven Clock for deterministic scheduler
// tests. Sleepers register a deadline and block until the clock is
// advanced past it; a driver goroutine running
//
//	for fc.AdvanceToNextWaiter() {
//	}
//
// steps fake time from sleeper to sleeper with no real waiting, and
// Stop releases everything when the test is done.
type FakeClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	waiters map[int]time.Time
	nextID  int
	stopped bool
}

// NewFakeClock returns a fake clock starting at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	c := &FakeClock{now: start, waiters: make(map[int]time.Time)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it blocks until the fake time passes now+d
// (or the clock is stopped).
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	deadline := c.now.Add(d)
	id := c.nextID
	c.nextID++
	c.waiters[id] = deadline
	c.cond.Broadcast()
	for c.now.Before(deadline) && !c.stopped {
		c.cond.Wait()
	}
	delete(c.waiters, id)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Advance moves fake time forward by d, waking sleepers whose deadline
// has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// AdvanceToNextWaiter blocks until some sleeper's deadline lies in the
// fake future, jumps time exactly there, and reports true. It returns
// false once Stop has been called. Sleepers already due (but not yet
// descheduled) are ignored, so a driver loop never spins.
func (c *FakeClock) AdvanceToNextWaiter() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.stopped {
		var earliest time.Time
		found := false
		for _, dl := range c.waiters {
			if dl.After(c.now) && (!found || dl.Before(earliest)) {
				earliest, found = dl, true
			}
		}
		if found {
			c.now = earliest
			c.cond.Broadcast()
			return true
		}
		c.cond.Wait()
	}
	return false
}

// Stop releases every sleeper and makes AdvanceToNextWaiter return
// false; call it once the scheduler under test has finished.
func (c *FakeClock) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.cond.Broadcast()
	c.mu.Unlock()
}
