package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// BenchSchema identifies the BENCH_cluster.json layout.
const BenchSchema = "esdds-soak/v1"

// OpStats summarizes one op kind's client-side outcomes. Latencies are
// end-to-end nanoseconds measured from scheduled arrival (coordinated-
// omission-safe).
type OpStats struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// Rejected counts ops the server refused with an overload rejection
	// (after the client's retry budget gave up). They are not in Count,
	// not in Errors, and not in the latency quantiles: a load-shedding
	// server degrading gracefully is accounted as backpressure, not
	// failure.
	Rejected   uint64  `json:"rejected,omitempty"`
	Skipped    uint64  `json:"skipped,omitempty"`
	ErrorRate  float64 `json:"error_rate"`
	P50Ns      int64   `json:"p50_ns"`
	P90Ns      int64   `json:"p90_ns"`
	P99Ns      int64   `json:"p99_ns"`
	MeanNs     float64 `json:"mean_ns"`
	MaxNs      int64   `json:"max_ns"`
	FirstError string  `json:"first_error,omitempty"`
}

func opStatsFromHistogram(h *obs.Histogram, count, errs, skipped uint64) OpStats {
	snap := h.Snapshot()
	st := OpStats{
		Count:   count,
		Errors:  errs,
		Skipped: skipped,
		P50Ns:   snap.P50,
		P90Ns:   snap.P90,
		P99Ns:   snap.P99,
		MeanNs:  snap.Mean,
		MaxNs:   snap.Max,
	}
	if count > 0 {
		st.ErrorRate = float64(errs) / float64(count)
	}
	return st
}

// Second is one per-second timeline entry. Issued counts scheduled
// arrivals in that second; Done/Errors count completions; the quantiles
// are of ops *completing* in that second, which is where a split storm
// appears as a spike.
type Second struct {
	Offset int    `json:"s"`
	Issued uint64 `json:"issued"`
	Done   uint64 `json:"done"`
	Errors uint64 `json:"errors,omitempty"`
	// Shed counts arrivals dropped at the client queue bound; Rejected
	// counts ops refused by server-side admission control.
	Shed     uint64 `json:"shed,omitempty"`
	Rejected uint64 `json:"rejected,omitempty"`
	P50Ns  int64  `json:"p50_ns,omitempty"`
	P99Ns  int64  `json:"p99_ns,omitempty"`
	MaxNs  int64  `json:"max_ns,omitempty"`
}

// GrowthSample is a per-second snapshot of the cluster's LH* state,
// taken by the harness alongside the latency timeline.
type GrowthSample struct {
	Offset        int    `json:"s"`
	RecordBuckets uint64 `json:"record_buckets"`
	IndexBuckets  uint64 `json:"index_buckets"`
	Splits        int    `json:"splits"`
	IAMs          int    `json:"iams"`
}

// ClusterCounters are the end-of-run cluster-side totals.
type ClusterCounters struct {
	Nodes         int    `json:"nodes"`
	NodesUsed     int    `json:"nodes_used"`
	RecordBuckets uint64 `json:"record_buckets"`
	IndexBuckets  uint64 `json:"index_buckets"`
	RecordSplits  int    `json:"record_splits"`
	IndexSplits   int    `json:"index_splits"`
	IAMs          int    `json:"iams"`
	RetryAttempts uint64 `json:"retry_attempts"`
	RetryRetries  uint64 `json:"retry_retries"`
	RetryFailures uint64 `json:"retry_failures"`
	// Repairs is the self-healing supervisor's completed-repair count
	// (zero without WithSelfHealing). An overload soak gates it at zero:
	// saturation must read as backpressure, never as node death.
	Repairs uint64 `json:"repairs,omitempty"`
	// Migration-ledger counters: every split/merge is a journalled
	// two-phase handoff; Started == Committed + Aborted + InFlight. A
	// chaos soak gates InFlight at zero (every handoff interrupted by a
	// node kill was rolled forward or aborted by the end of the run)
	// and Resumed counts the ones the supervisor had to re-drive.
	MigStarted   uint64 `json:"migrations_started,omitempty"`
	MigCommitted uint64 `json:"migrations_committed,omitempty"`
	MigAborted   uint64 `json:"migrations_aborted,omitempty"`
	MigResumed   uint64 `json:"migrations_resumed,omitempty"`
	MigInFlight  int    `json:"migrations_in_flight,omitempty"`
}

// RunConfig echoes the knobs that produced a report, so a BENCH file
// entry is self-describing and regression diffs compare like with like.
type RunConfig struct {
	Cluster     string  `json:"cluster"`
	Nodes       int     `json:"nodes"`
	Ops         int     `json:"ops"`
	Rate        float64 `json:"rate"`
	Mix         string  `json:"mix"`
	Seed        int64   `json:"seed"`
	ZipfS       float64 `json:"zipf_s"`
	QueryPool   int     `json:"query_pool"`
	MaxInFlight int     `json:"max_in_flight"`
	BucketCap   int     `json:"bucket_cap"`
	SearchMode  string  `json:"search_mode"`
}

// Totals are whole-run aggregates. Shed is client-queue drops,
// Rejected is server-side overload refusals; neither is in Ops.
type Totals struct {
	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
	Shed       uint64  `json:"shed"`
	Rejected   uint64  `json:"rejected,omitempty"`
	ErrorRate  float64 `json:"error_rate"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Throughput float64 `json:"throughput"`
	// Goodput is successfully completed ops per second — the overload
	// SLO's "the cluster keeps doing useful work" floor.
	Goodput float64 `json:"goodput"`
}

// Report is one soak run's full record: the BENCH_cluster.json entry
// for its profile.
type Report struct {
	Schema      string             `json:"schema"`
	Profile     string             `json:"profile"`
	When        string             `json:"when,omitempty"`
	Config      RunConfig          `json:"config"`
	Ops         map[string]OpStats `json:"ops"`
	Totals      Totals             `json:"totals"`
	Cluster     ClusterCounters    `json:"cluster"`
	NodeMetrics map[string]float64 `json:"node_metrics,omitempty"`
	Timeline    []Second           `json:"timeline"`
	Growth      []GrowthSample     `json:"growth,omitempty"`
	Audit       *AuditResult       `json:"audit,omitempty"`
	Gates       []GateOutcome      `json:"gates,omitempty"`
}

// BuildReport assembles a report from a run's raw measurements.
func BuildReport(profile string, cfg RunConfig, res *RunResult) *Report {
	rep := &Report{
		Schema:   BenchSchema,
		Profile:  profile,
		Config:   cfg,
		Ops:      res.Ops,
		Timeline: res.Timeline,
	}
	var ops, errs, rejected uint64
	for _, st := range res.Ops {
		ops += st.Count
		errs += st.Errors
		rejected += st.Rejected
	}
	rep.Totals = Totals{
		Ops:        ops,
		Errors:     errs,
		Shed:       res.Shed,
		Rejected:   rejected,
		ElapsedSec: res.Elapsed.Seconds(),
	}
	if ops > 0 {
		rep.Totals.ErrorRate = float64(errs) / float64(ops)
	}
	if rep.Totals.ElapsedSec > 0 {
		rep.Totals.Throughput = float64(ops) / rep.Totals.ElapsedSec
		rep.Totals.Goodput = float64(ops-errs) / rep.Totals.ElapsedSec
	}
	return rep
}

// BenchFile is the on-disk BENCH_cluster.json shape: one report per
// profile, merged across runs so re-running one profile never drops
// another profile's history.
type BenchFile struct {
	Schema   string             `json:"schema"`
	Profiles map[string]*Report `json:"profiles"`
}

// LoadBenchFile reads a BENCH file; a missing file yields an empty one.
// A present-but-unparsable file is an error: history must never be
// silently clobbered.
func LoadBenchFile(path string) (*BenchFile, error) {
	f := &BenchFile{Schema: BenchSchema, Profiles: map[string]*Report{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
	}
	if f.Profiles == nil {
		f.Profiles = map[string]*Report{}
	}
	return f, nil
}

// Put merges one run into the file, replacing only its own profile.
func (f *BenchFile) Put(rep *Report) {
	f.Schema = BenchSchema
	f.Profiles[rep.Profile] = rep
}

// WriteBenchFile persists the file with an atomic rename.
func WriteBenchFile(path string, f *BenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// diffMetrics are the headline series a regression diff renders.
func diffMetrics(r *Report) []struct {
	name string
	val  float64
} {
	out := []struct {
		name string
		val  float64
	}{
		{"throughput", r.Totals.Throughput},
		{"goodput", r.Totals.Goodput},
		{"error_rate", r.Totals.ErrorRate},
		{"shed", float64(r.Totals.Shed)},
		{"rejected", float64(r.Totals.Rejected)},
	}
	kinds := make([]string, 0, len(r.Ops))
	for k := range r.Ops {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		st := r.Ops[k]
		out = append(out,
			struct {
				name string
				val  float64
			}{k + ".p50", float64(st.P50Ns)},
			struct {
				name string
				val  float64
			}{k + ".p99", float64(st.P99Ns)},
		)
	}
	out = append(out,
		struct {
			name string
			val  float64
		}{"splits", float64(r.Cluster.RecordSplits + r.Cluster.IndexSplits)},
		struct {
			name string
			val  float64
		}{"iams", float64(r.Cluster.IAMs)},
	)
	return out
}

// DiffReports renders a headline comparison of a run against the
// previous BENCH entry for the same profile — the context printed when
// an SLO gate fails.
func DiffReports(prev, cur *Report) string {
	if prev == nil {
		return "(no previous BENCH entry for profile " + cur.Profile + ")\n"
	}
	prevVals := map[string]float64{}
	for _, m := range diffMetrics(prev) {
		prevVals[m.name] = m.val
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", "metric", "previous", "current", "delta")
	for _, m := range diffMetrics(cur) {
		pv, ok := prevVals[m.name]
		if !ok {
			fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", m.name, "-", fmtMetric(m.name, m.val), "new")
			continue
		}
		delta := "-"
		if pv != 0 {
			delta = fmt.Sprintf("%+.1f%%", (m.val-pv)/pv*100)
		} else if m.val != 0 {
			delta = "+inf"
		}
		fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", m.name, fmtMetric(m.name, pv), fmtMetric(m.name, m.val), delta)
	}
	return b.String()
}

// fmtMetric renders latency series as durations, everything else raw.
func fmtMetric(name string, v float64) string {
	if strings.HasSuffix(name, ".p50") || strings.HasSuffix(name, ".p99") {
		return fmt.Sprintf("%.2fms", v/1e6)
	}
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
