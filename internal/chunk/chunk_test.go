package chunk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{S: 4, M: 4}, true},
		{Params{S: 4, M: 1}, true},
		{Params{S: 8, M: 2}, true},
		{Params{S: 8, M: 4}, true},
		{Params{S: 1, M: 1}, true},
		{Params{S: 0, M: 1}, false},
		{Params{S: 4, M: 0}, false},
		{Params{S: 4, M: 5}, false},
		{Params{S: 8, M: 3}, false}, // M does not divide S
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestGeometryAccessors(t *testing.T) {
	p := Params{S: 8, M: 4}
	if p.Alignments() != 2 {
		t.Errorf("Alignments = %d, want 2", p.Alignments())
	}
	if p.MinQueryLen() != 9 { // paper §2.5: s=8, 4 sites → min length s+1
		t.Errorf("MinQueryLen = %d, want 9", p.MinQueryLen())
	}
	p2 := Params{S: 8, M: 2}
	if p2.MinQueryLen() != 11 { // paper §2.5: two sites → min length s+3
		t.Errorf("MinQueryLen = %d, want 11", p2.MinQueryLen())
	}
	wantShifts := []int{0, 2, 4, 6}
	for j, w := range wantShifts {
		if got := p.Shift(j); got != w {
			t.Errorf("Shift(%d) = %d, want %d", j, got, w)
		}
	}
}

func TestShiftOutOfRangePanics(t *testing.T) {
	p := Params{S: 4, M: 2}
	for _, j := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shift(%d): expected panic", j)
				}
			}()
			p.Shift(j)
		}()
	}
}

// TestPaperExampleSection22 mirrors §2.2 exactly: s=4, M=4 (basic
// scheme), RC = "ABCDEFGHIJKLMNOPQRSTUVWXYZ".
func TestPaperExampleSection22(t *testing.T) {
	rc := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
	p := Params{S: 4, M: 4}
	want := [][]string{
		{"ABCD", "EFGH", "IJKL", "MNOP", "QRST", "UVWX", "YZ\x00\x00"},
		{"\x00\x00\x00A", "BCDE", "FGHI", "JKLM", "NOPQ", "RSTU", "VWXY", "Z\x00\x00\x00"},
		{"\x00\x00AB", "CDEF", "GHIJ", "KLMN", "OPQR", "STUV", "WXYZ"},
		{"\x00ABC", "DEFG", "HIJK", "LMNO", "PQRS", "TUVW", "XYZ\x00"},
	}
	// Note: the paper lists chunkings in order offset 0, 1, 2, 3 — its
	// "second chunked RC" has 3 leading zeros, i.e. shift 3 in our terms
	// appears as its chunking #2. Our shift(j) = j, so our j=1 is the
	// paper's fourth listing, j=3 the paper's second. Compare by shift.
	byShift := map[int][]string{0: want[0], 3: want[1], 2: want[2], 1: want[3]}
	for j := 0; j < 4; j++ {
		got := Split(rc, p, j)
		exp := byShift[p.Shift(j)]
		if len(got.Chunks) != len(exp) {
			t.Fatalf("chunking %d: %d chunks, want %d", j, len(got.Chunks), len(exp))
		}
		for i, c := range got.Chunks {
			if string(c) != exp[i] {
				t.Errorf("chunking %d chunk %d = %q, want %q", j, i, c, exp[i])
			}
		}
		if got.FirstIndex != 0 {
			t.Errorf("chunking %d FirstIndex = %d without DropPartial", j, got.FirstIndex)
		}
	}
}

// TestPaperExampleSection24 mirrors §2.4: query "BCDEFGHIJK" at s=4
// with all alignments gives the four listed series.
func TestPaperExampleSection24(t *testing.T) {
	p := Params{S: 4, M: 4}
	series, err := QuerySeries([]byte("BCDEFGHIJK"), p, true)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"BCDE", "FGHI"},
		{"CDEF", "GHIJ"},
		{"DEFG", "HIJK"},
		{"EFGH"},
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4", len(series))
	}
	for a, s := range series {
		if s.A != a {
			t.Errorf("series %d has A=%d", a, s.A)
		}
		if len(s.Chunks) != len(want[a]) {
			t.Fatalf("series %d: %d chunks, want %d", a, len(s.Chunks), len(want[a]))
		}
		for i, c := range s.Chunks {
			if string(c) != want[a][i] {
				t.Errorf("series %d chunk %d = %q, want %q", a, i, c, want[a][i])
			}
		}
	}
}

func TestSplitAllCount(t *testing.T) {
	p := Params{S: 8, M: 4}
	all := SplitAll([]byte("HELLO WORLD RECORD"), p)
	if len(all) != 4 {
		t.Fatalf("SplitAll returned %d chunkings, want 4", len(all))
	}
	for j, c := range all {
		if c.J != j {
			t.Errorf("chunking %d labelled J=%d", j, c.J)
		}
		for _, ch := range c.Chunks {
			if len(ch) != p.S {
				t.Errorf("chunk of length %d, want %d", len(ch), p.S)
			}
		}
	}
}

func TestDropPartial(t *testing.T) {
	p := Params{S: 4, M: 4, DropPartial: true}
	rc := []byte("ABCDEFGHIJ") // 10 symbols

	// Shift 0: chunks ABCD EFGH IJ00 → tail dropped.
	c0 := Split(rc, p, 0)
	if len(c0.Chunks) != 2 || c0.FirstIndex != 0 {
		t.Fatalf("shift 0: got %d chunks, FirstIndex=%d", len(c0.Chunks), c0.FirstIndex)
	}
	if string(c0.Chunks[0]) != "ABCD" || string(c0.Chunks[1]) != "EFGH" {
		t.Errorf("shift 0 chunks = %q %q", c0.Chunks[0], c0.Chunks[1])
	}

	// Shift 2 (j=2): 00AB CDEF GHIJ → head dropped, tail exact.
	c2 := Split(rc, p, 2)
	if len(c2.Chunks) != 2 || c2.FirstIndex != 1 {
		t.Fatalf("shift 2: got %d chunks, FirstIndex=%d", len(c2.Chunks), c2.FirstIndex)
	}
	if string(c2.Chunks[0]) != "CDEF" || string(c2.Chunks[1]) != "GHIJ" {
		t.Errorf("shift 2 chunks = %q %q", c2.Chunks[0], c2.Chunks[1])
	}
}

func TestDropPartialTinyRecord(t *testing.T) {
	// A record smaller than S with a shift leaves nothing after trimming.
	p := Params{S: 8, M: 8, DropPartial: true}
	c := Split([]byte("AB"), p, 3)
	if len(c.Chunks) != 0 {
		t.Errorf("expected no chunks, got %d", len(c.Chunks))
	}
}

func TestQuerySeriesTooShort(t *testing.T) {
	p := Params{S: 8, M: 4} // min length 9 for minimal set
	if _, err := QuerySeries([]byte("12345678"), p, false); err == nil {
		t.Error("8-symbol query accepted, want ErrQueryTooShort")
	}
	if _, err := QuerySeries([]byte("123456789"), p, false); err != nil {
		t.Errorf("9-symbol query rejected: %v", err)
	}
	// Full alignment set needs S + S - 1 = 15.
	if _, err := QuerySeries([]byte("12345678901234"), p, true); err == nil {
		t.Error("14-symbol query accepted for full set, want error")
	}
	if _, err := QuerySeries([]byte("123456789012345"), p, true); err != nil {
		t.Errorf("15-symbol query rejected for full set: %v", err)
	}
}

func TestQuerySeriesInvalidParams(t *testing.T) {
	if _, err := QuerySeries([]byte("abc"), Params{S: 4, M: 3}, false); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestLocatePositionInverse(t *testing.T) {
	for _, p := range []Params{{S: 4, M: 4}, {S: 8, M: 4}, {S: 8, M: 2}, {S: 6, M: 3}, {S: 6, M: 1}} {
		for j := 0; j < p.M; j++ {
			for pos := 0; pos < 50; pos++ {
				a, i := Locate(pos, p, j)
				if a < 0 || a >= p.S {
					t.Fatalf("%+v j=%d pos=%d: alignment %d out of range", p, j, pos, a)
				}
				if got := Position(p, j, a, i); got != pos {
					t.Fatalf("%+v j=%d pos=%d: Position(Locate) = %d", p, j, pos, got)
				}
				// The chunk boundary property: pos + a + shift ≡ 0 (mod S).
				if (pos+a+p.Shift(j))%p.S != 0 {
					t.Fatalf("%+v j=%d pos=%d: boundary property violated", p, j, pos)
				}
			}
		}
	}
}

// TestMatchChunkingUnique verifies the coverage theorem behind §2.5: for
// every position exactly one chunking matches at an alignment below S/M.
func TestMatchChunkingUnique(t *testing.T) {
	for _, p := range []Params{{S: 8, M: 4}, {S: 8, M: 2}, {S: 8, M: 8}, {S: 8, M: 1}, {S: 6, M: 2}} {
		q := p.Alignments()
		for pos := 0; pos < 100; pos++ {
			count := 0
			var matchJ int
			for j := 0; j < p.M; j++ {
				a, _ := Locate(pos, p, j)
				if a < q {
					count++
					matchJ = j
				}
			}
			if count != 1 {
				t.Fatalf("%+v pos=%d: %d chunkings match, want exactly 1", p, pos, count)
			}
			j, a, i := MatchChunking(pos, p)
			if j != matchJ {
				t.Fatalf("%+v pos=%d: MatchChunking = %d, want %d", p, pos, j, matchJ)
			}
			if Position(p, j, a, i) != pos {
				t.Fatalf("%+v pos=%d: MatchChunking inconsistent with Position", p, pos)
			}
		}
	}
}

// TestSeriesMatchesSplit is the end-to-end geometric invariant: if the
// query occurs at position pos in the record, then the series at the
// alignment Locate reports appears verbatim as consecutive chunks of the
// matching chunking, starting at the reported chunk index.
func TestSeriesMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ ")
	for _, p := range []Params{{S: 4, M: 4}, {S: 4, M: 2}, {S: 8, M: 4}, {S: 6, M: 3}} {
		for trial := 0; trial < 200; trial++ {
			n := p.S*3 + rng.Intn(40)
			rc := make([]byte, n)
			for i := range rc {
				rc[i] = alphabet[rng.Intn(len(alphabet))]
			}
			qlen := p.MinQueryLen() + rng.Intn(10)
			if qlen > n {
				continue
			}
			pos := rng.Intn(n - qlen + 1)
			q := rc[pos : pos+qlen]

			series, err := QuerySeries(q, p, false)
			if err != nil {
				t.Fatal(err)
			}
			j, a, idx := MatchChunking(pos, p)
			var ser *Series
			for i := range series {
				if series[i].A == a {
					ser = &series[i]
				}
			}
			if ser == nil {
				t.Fatalf("%+v: no series at alignment %d", p, a)
			}
			ck := Split(rc, p, j)
			for i, sc := range ser.Chunks {
				stored := ck.Chunks[idx+i]
				if !bytes.Equal(sc, stored) {
					t.Fatalf("%+v pos=%d: series chunk %d = %q, stored = %q", p, pos, i, sc, stored)
				}
			}
		}
	}
}

// Property: every chunking is a faithful, padded re-slicing — reading the
// chunks back at the right offsets reconstructs the record.
func TestSplitReconstructsQuick(t *testing.T) {
	p := Params{S: 8, M: 4}
	prop := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		for j := 0; j < p.M; j++ {
			ck := Split(data, p, j)
			t0 := p.Shift(j)
			flat := bytes.Join(ck.Chunks, nil)
			// flat = t0 pad bytes ∥ data ∥ tail pads.
			if len(flat) < t0+len(data) {
				return false
			}
			for i := 0; i < t0; i++ {
				if flat[i] != Pad {
					return false
				}
			}
			if !bytes.Equal(flat[t0:t0+len(data)], data) {
				return false
			}
			for _, b := range flat[t0+len(data):] {
				if b != Pad {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExpandShortQuery(t *testing.T) {
	p := Params{S: 4, M: 4}
	got, err := ExpandShortQuery([]byte("ABC"), p, []byte("XY"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "ABCX" || string(got[1]) != "ABCY" {
		t.Errorf("got %q", got)
	}
	if _, err := ExpandShortQuery([]byte("AB"), p, []byte("X")); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := ExpandShortQuery([]byte("ABC"), p, nil); err == nil {
		t.Error("empty alphabet accepted")
	}
}

func TestNumChunks(t *testing.T) {
	p := Params{S: 4, M: 4}
	cases := []struct{ n, j, want int }{
		{26, 0, 7}, // §2.2 first chunking: 7 chunks
		{26, 3, 8}, // §2.2 shift-3 chunking: 8 chunks
		{26, 2, 7},
		{26, 1, 7},
		{4, 0, 1},
		{5, 0, 2},
	}
	for _, c := range cases {
		if got := p.NumChunks(c.n, c.j); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.n, c.j, got, c.want)
		}
	}
}
