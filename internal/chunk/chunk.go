// Package chunk implements the chunking geometry of the encrypted
// searchable SDDS (Stage 1 of the paper, sections 2.1–2.5).
//
// A record content (RC) of symbols r_0 … r_{N-1} is cut into chunks of S
// symbols at M different shifts ("chunkings"). Chunking j is shifted by
// t_j = j·(S/M) symbols: it conceptually prepends t_j zero symbols and
// then cuts consecutive S-symbol chunks, padding the final chunk with
// zeros. Storing the M chunkings on M different index sites lets a
// substring search proceed on encrypted chunks: a query is itself cut at
// A different alignments into "series" of full chunks, and an occurrence
// of the query at any record position lines up with exactly one
// (chunking, alignment) pair when A = S/M alignments are generated.
//
// The package is purely geometric: it knows nothing about encryption,
// encoding, or dispersion. Those stages consume the [][]byte chunk
// sequences produced here.
package chunk

import (
	"errors"
	"fmt"
)

// Pad is the padding symbol used to fill partial chunks, the "zero
// symbol" of the paper. Records are zero-terminated strings, so Pad never
// collides with a content symbol.
const Pad byte = 0

// Params fixes the chunking geometry for one index file.
type Params struct {
	// S is the chunk size in symbols. Must be >= 1.
	S int
	// M is the number of chunkings (index record variants per record).
	// Must satisfy 1 <= M <= S and M | S. With M == S this is the basic
	// scheme of §2.1; with M < S the storage-reduced scheme of §2.5.
	M int
	// DropPartial suppresses chunks that contain padding (the first
	// chunk of any shifted chunking and the last chunk when the record
	// length is not a multiple of S). This is the §2.1 countermeasure
	// against frequency attacks on beginning/ending chunks, at the cost
	// of not finding matches inside the suppressed regions.
	DropPartial bool
}

// Validate checks the geometric constraints.
func (p Params) Validate() error {
	if p.S < 1 {
		return fmt.Errorf("chunk: chunk size S=%d, want >= 1", p.S)
	}
	if p.M < 1 || p.M > p.S {
		return fmt.Errorf("chunk: chunkings M=%d, want 1..S (S=%d)", p.M, p.S)
	}
	if p.S%p.M != 0 {
		return fmt.Errorf("chunk: M=%d must divide S=%d", p.M, p.S)
	}
	return nil
}

// Alignments returns A = S/M, the number of query alignments needed so
// that every occurrence position is covered by exactly one
// (chunking, alignment) pair.
func (p Params) Alignments() int { return p.S / p.M }

// Shift returns t_j, the zero-padding shift of chunking j.
func (p Params) Shift(j int) int {
	if j < 0 || j >= p.M {
		panic(fmt.Sprintf("chunk: chunking index %d out of range [0,%d)", j, p.M))
	}
	return j * (p.S / p.M)
}

// MinQueryLen returns the minimum query length searchable with the
// minimal alignment set: S + S/M − 1. (§2.5: with S=8 and M=4 the
// minimum is 9; with M=2 it is 11; with M=S it is S.)
func (p Params) MinQueryLen() int { return p.S + p.Alignments() - 1 }

// NumChunks returns the number of chunks chunking j produces for a record
// of n symbols, before any DropPartial trimming.
func (p Params) NumChunks(n, j int) int {
	t := p.Shift(j)
	return (n + t + p.S - 1) / p.S
}

// Chunked is one chunking of one record.
type Chunked struct {
	// J identifies the chunking (0 <= J < M).
	J int
	// FirstIndex is the chunk index of Chunks[0] within the untrimmed
	// chunking; it is 1 when DropPartial removed a padded head chunk,
	// else 0.
	FirstIndex int
	// Chunks holds the S-symbol chunks in order. Every chunk has length
	// exactly S.
	Chunks [][]byte
}

// Split produces chunking j of rc. The result's chunks are fresh slices;
// rc is not retained.
func Split(rc []byte, p Params, j int) Chunked {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	t := p.Shift(j)
	n := len(rc)
	total := (n + t + p.S - 1) / p.S
	out := Chunked{J: j}
	out.Chunks = make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		c := make([]byte, p.S)
		// Chunk i covers RC positions [i*S - t, (i+1)*S - t).
		for k := 0; k < p.S; k++ {
			pos := i*p.S - t + k
			if pos >= 0 && pos < n {
				c[k] = rc[pos]
			} else {
				c[k] = Pad
			}
		}
		out.Chunks = append(out.Chunks, c)
	}
	if p.DropPartial {
		// Head chunk is padded iff t > 0; tail chunk iff (n+t) % S != 0.
		if t > 0 && len(out.Chunks) > 0 {
			out.Chunks = out.Chunks[1:]
			out.FirstIndex = 1
		}
		if (n+t)%p.S != 0 && len(out.Chunks) > 0 {
			out.Chunks = out.Chunks[:len(out.Chunks)-1]
		}
	}
	return out
}

// SplitAll produces all M chunkings of rc.
func SplitAll(rc []byte, p Params) []Chunked {
	out := make([]Chunked, p.M)
	for j := 0; j < p.M; j++ {
		out[j] = Split(rc, p, j)
	}
	return out
}

// Series is one alignment of a query: the run of full S-symbol chunks
// obtained after dropping the first A symbols of the query.
type Series struct {
	// A is the alignment: the number of query symbols skipped before the
	// first full chunk.
	A int
	// Chunks holds the consecutive full chunks; every chunk has length
	// exactly S and at least one chunk is present.
	Chunks [][]byte
}

// ErrQueryTooShort reports a query shorter than the minimum searchable
// length for the requested alignment set.
var ErrQueryTooShort = errors.New("chunk: query too short for chunking geometry")

// QuerySeries generates the alignment series for query q.
//
// If all is false, the minimal set of A = S/M alignments is generated
// (§2.5 semantics: exactly one (chunking, alignment) pair matches per
// occurrence, so a single site-side hit cannot be cross-checked and false
// positives rise). If all is true, S alignments are generated (§2.3 basic
// scheme: every chunking receives a matching series for a true
// occurrence, so a coordinator can require all chunkings to agree).
//
// Every generated series contains at least one full chunk; if any
// alignment in the requested set would produce an empty series,
// ErrQueryTooShort is returned.
func QuerySeries(q []byte, p Params, all bool) ([]Series, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	alignments := p.Alignments()
	if all {
		alignments = p.S
	}
	if len(q) < p.S+alignments-1 {
		return nil, fmt.Errorf("%w: len %d < %d (S=%d, alignments=%d)",
			ErrQueryTooShort, len(q), p.S+alignments-1, p.S, alignments)
	}
	out := make([]Series, 0, alignments)
	for a := 0; a < alignments; a++ {
		full := (len(q) - a) / p.S
		s := Series{A: a, Chunks: make([][]byte, 0, full)}
		for i := 0; i < full; i++ {
			c := make([]byte, p.S)
			copy(c, q[a+i*p.S:a+(i+1)*p.S])
			s.Chunks = append(s.Chunks, c)
		}
		out = append(out, s)
	}
	return out, nil
}

// Locate maps an occurrence position in the record to the (alignment,
// chunk index) pair at which chunking j would contain the query's series:
// the first chunk boundary of chunking j at or after pos is at alignment
// a = (−(pos + t_j)) mod S, chunk index i = (pos + a + t_j) / S.
func Locate(pos int, p Params, j int) (a, chunkIdx int) {
	t := p.Shift(j)
	a = (p.S - (pos+t)%p.S) % p.S
	chunkIdx = (pos + a + t) / p.S
	return a, chunkIdx
}

// Position inverts Locate: the record position of an occurrence whose
// series at alignment a matched starting at chunk index i of chunking j.
func Position(p Params, j, a, i int) int {
	return i*p.S - p.Shift(j) - a
}

// MatchChunking reports the chunking whose minimal-alignment series
// (a < S/M) matches an occurrence at pos, together with that alignment
// and chunk index. Exactly one chunking qualifies for any pos.
func MatchChunking(pos int, p Params) (j, a, chunkIdx int) {
	q := p.Alignments()
	for j = 0; j < p.M; j++ {
		a, chunkIdx = Locate(pos, p, j)
		if a < q {
			return j, a, chunkIdx
		}
	}
	panic("chunk: no chunking covers position — geometry violated")
}

// ExpandShortQuery implements the paper's §2.3 "kludge" for queries of
// length S−1: it returns the |alphabet| queries formed by appending each
// alphabet symbol, each of which is then searchable at alignment 0. The
// union of their results over-approximates the true result set. Queries
// of other lengths are rejected.
func ExpandShortQuery(q []byte, p Params, alphabet []byte) ([][]byte, error) {
	if len(q) != p.S-1 {
		return nil, fmt.Errorf("chunk: ExpandShortQuery needs length S-1=%d, got %d", p.S-1, len(q))
	}
	if len(alphabet) == 0 {
		return nil, errors.New("chunk: empty alphabet")
	}
	out := make([][]byte, 0, len(alphabet))
	for _, c := range alphabet {
		qq := make([]byte, len(q)+1)
		copy(qq, q)
		qq[len(q)] = c
		out = append(out, qq)
	}
	return out, nil
}
