package esdds

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/sdds"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Cluster is a handle to a set of storage nodes: either an in-process
// simulated multicomputer or real TCP daemons. Every transport the
// cluster builds can be layered with resilience middleware: a Retry
// stack (exponential backoff + jitter, per-node circuit breaking) and,
// for chaos testing, a deterministic fault injector.
type Cluster struct {
	inner   *sdds.Cluster
	servers []*transport.Server // only for in-process TCP test clusters
	close   []func() error

	// resilience stack handles (nil when the option was not requested)
	faulty *transport.Faulty
	retry  *transport.Retry
	hedge  *transport.Hedge

	// shedders armed on locally hosted TCP servers (WithAdmissionControl
	// on StartLocalTCPCluster; empty otherwise), indexed like servers.
	shedders []*transport.Shedder

	// tcp is the pooled client transport (nil for memory clusters); kept
	// so self-healing can subscribe the detector to pool-level failures.
	tcp *transport.TCP

	// self-healing availability loop (nil without WithSelfHealing).
	// probeTr is the transport below the retry layer: health probes must
	// not be masked by open circuit breakers.
	probeTr transport.Transport
	det     *transport.Detector
	sup     *sdds.Supervisor
	guard   *sdds.Guardian

	// memory-cluster internals enabling node kill/revive for chaos and
	// recovery scenarios (nil for dialed clusters)
	mem   *transport.Memory
	peers transport.Transport
	place *sdds.Placement

	// linearScan records the WithLinearScan option so revived nodes
	// match the rest of the cluster.
	linearScan bool

	// met is the shared metrics registry (nil without WithObservability).
	met *obs.Registry

	// durable node state (WithDataDir; empty/nil otherwise). storeMu
	// guards the maps: the supervisor's reviver mutates them from its
	// own goroutine.
	dataDir  string
	storeMu  sync.Mutex
	nodes    map[int]*sdds.Node
	stores   map[int]*wal.Store
	recovery map[int]NodeRecovery
}

// NodeRecovery reports how a durable node's local state came to be at
// its most recent (re)start: "fresh" (no prior state), "recovered"
// (checkpoint+journal replayed), or "corrupt" (verification failed; the
// node came up empty and needs a parity restore — Err says why).
type NodeRecovery struct {
	Outcome string
	Err     string
}

// ClusterOption configures the transport stack of a cluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	retry      *transport.RetryPolicy
	retrySeed  int64
	faultSeed  *int64
	linearScan bool
	selfHeal   *SelfHealingConfig
	dataDir    string
	observe    bool
	shed       *transport.ShedPolicy
	hedge      *transport.HedgePolicy
}

// WithDataDir makes every node durable: each journals its mutations to
// a checksummed write-ahead log (with periodic checkpoints) under
// dir/node-<id>/ and replays it on restart, so reopening a cluster over
// the same directory — or reviving a killed node — recovers its state
// locally instead of consuming LH*RS parity-repair capacity. A journal
// that fails checksum verification is detected and reported (see
// NodeRecovery); the node then comes up empty for a parity restore.
// Only meaningful for clusters that host their own nodes (memory and
// local-TCP); DialCluster rejects it — a dialed daemon owns its own
// data directory (see cmd/esdds-node -data-dir).
func WithDataDir(dir string) ClusterOption {
	return func(c *clusterConfig) { c.dataDir = dir }
}

// WithLinearScan disables the node-side posting index, making every
// search a full linear scan over bucket contents — the reference
// behavior the posting index is differentially tested against. Only
// meaningful for clusters that construct their own nodes (memory and
// local-TCP clusters).
func WithLinearScan() ClusterOption {
	return func(c *clusterConfig) { c.linearScan = true }
}

// WithRetry layers the retry/backoff/circuit-breaker middleware (with
// the given policy) over the cluster's transports — both the client
// side and, for in-process clusters, server-to-server forwarding.
func WithRetry(p transport.RetryPolicy) ClusterOption {
	return func(c *clusterConfig) { c.retry = &p }
}

// WithDefaultRetry is WithRetry(transport.DefaultRetryPolicy()).
func WithDefaultRetry() ClusterOption {
	return func(c *clusterConfig) {
		p := transport.DefaultRetryPolicy()
		c.retry = &p
	}
}

// WithRetrySeed fixes the retry middleware's jitter seed (for
// reproducible chaos runs). Jitter only shapes backoff pauses; it never
// changes which attempts happen.
func WithRetrySeed(seed int64) ClusterOption {
	return func(c *clusterConfig) { c.retrySeed = seed }
}

// WithFaultInjection inserts a seeded, deterministic fault injector
// under the retry layer. Configure it through Cluster.Faults().
func WithFaultInjection(seed int64) ClusterOption {
	return func(c *clusterConfig) { c.faultSeed = &seed }
}

// WithAdmissionControl arms every locally hosted TCP server with an
// adaptive shedder (AIMD concurrency limit + CoDel-style queue-delay
// target, see DESIGN.md §13): past saturation, excess requests are
// rejected with a retry-after hint instead of queueing without bound.
// The zero policy takes shedder defaults; the op classifier defaults
// to sdds.OpPriority (probes are never shed, Guardian image traffic
// yields first). Only meaningful for StartLocalTCPCluster — memory
// clusters have no server loop, and dialed daemons own their shedders
// (esdds-node -shed).
func WithAdmissionControl(p transport.ShedPolicy) ClusterOption {
	return func(c *clusterConfig) { c.shed = &p }
}

// WithHedging layers budgeted backup requests for idempotent read ops
// (get, search, word search, stats) under the retry layer: when a
// primary attempt is slower than a p99-ish adaptive delay, a second
// attempt races it and the first answer wins. An empty policy Ops list
// defaults to sdds.HedgeSafeOps().
func WithHedging(p transport.HedgePolicy) ClusterOption {
	return func(c *clusterConfig) { c.hedge = &p }
}

func applyOptions(opts []ClusterOption) clusterConfig {
	var cfg clusterConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// stack layers the configured middleware over a base transport:
// base → Faulty (optional) → Hedge (optional) → Retry (optional).
// Hedge sits below Retry so each retry attempt makes a fresh hedging
// decision; probes bypass both (probeTr), so breakers and hedge
// budgets never mask health checks.
func (cfg *clusterConfig) stack(base transport.Transport, c *Cluster) transport.Transport {
	tr := base
	if cfg.faultSeed != nil {
		c.faulty = transport.NewFaulty(tr, *cfg.faultSeed)
		c.faulty.Instrument(c.met)
		tr = c.faulty
	}
	c.probeTr = tr
	if cfg.hedge != nil {
		hp := *cfg.hedge
		if len(hp.Ops) == 0 {
			hp.Ops = sdds.HedgeSafeOps()
		}
		c.hedge = transport.NewHedge(tr, hp)
		c.hedge.Instrument(c.met)
		tr = c.hedge
	}
	if cfg.retry != nil {
		rp := *cfg.retry
		if rp.NoRetryOps == nil {
			// The legacy one-shot migration ops move records destructively
			// with the only copy in the response; a retry after a lost
			// response re-extracts an already-emptied range. Never resend
			// them unless the caller explicitly opts in.
			rp.NoRetryOps = sdds.NonRetryableOps()
		}
		c.retry = transport.NewRetry(tr, rp, cfg.retrySeed)
		c.retry.Instrument(c.met)
		tr = c.retry
	}
	return tr
}

// NewMemoryCluster simulates a multicomputer of n storage nodes inside
// the current process. Every distributed code path (addressing,
// forwarding, splits, scatter-gather search) runs exactly as it would
// over a network. Options layer retry middleware and fault injection
// over both client operations and server-to-server forwarding.
func NewMemoryCluster(n int, opts ...ClusterOption) *Cluster {
	if n < 1 {
		n = 1
	}
	cfg := applyOptions(opts)
	mem := transport.NewMemory()
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := sdds.NewPlacement(ids)
	if err != nil {
		panic("esdds: " + err.Error()) // n >= 1 makes this impossible
	}
	c := &Cluster{mem: mem, place: place, linearScan: cfg.linearScan}
	if cfg.observe {
		c.met = obs.NewRegistry()
	}
	c.initStores(cfg.dataDir)
	tr := cfg.stack(mem, c)
	c.peers = tr
	for _, id := range ids {
		node := sdds.NewNode(id, tr, place)
		if cfg.linearScan {
			node.DisablePostingIndex()
		}
		node.Instrument(c.met)
		if err := c.attachNodeStore(int(id), node); err != nil {
			panic("esdds: " + err.Error()) // unusable data dir
		}
		mem.Register(id, node.Handler())
	}
	c.inner = sdds.NewCluster(tr, place)
	c.inner.Instrument(c.met)
	c.close = []func() error{c.closeStores, mem.Close}
	if err := c.attachMigrationLog(); err != nil {
		panic("esdds: " + err.Error()) // unusable data dir
	}
	if cfg.selfHeal != nil {
		if err := c.enableSelfHealing(*cfg.selfHeal); err != nil {
			panic("esdds: self-healing: " + err.Error()) // bad Parity config
		}
	}
	return c
}

// DialCluster connects to running esdds-node daemons. addrs maps node
// IDs (0..n-1, dense) to host:port addresses. Options layer retry
// middleware (and fault injection, for failure drills against live
// daemons) over the client transport.
func DialCluster(addrs map[int]string, opts ...ClusterOption) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("esdds: empty cluster address map")
	}
	cfg := applyOptions(opts)
	if cfg.dataDir != "" {
		return nil, fmt.Errorf("esdds: WithDataDir requires a cluster that hosts its own nodes; daemons own their data dirs (esdds-node -data-dir)")
	}
	ids := make([]transport.NodeID, 0, len(addrs))
	dir := make(map[transport.NodeID]string, len(addrs))
	for i := 0; i < len(addrs); i++ {
		addr, ok := addrs[i]
		if !ok {
			return nil, fmt.Errorf("esdds: node IDs must be dense 0..n-1; missing %d", i)
		}
		ids = append(ids, transport.NodeID(i))
		dir[transport.NodeID(i)] = addr
	}
	place, err := sdds.NewPlacement(ids)
	if err != nil {
		return nil, err
	}
	tcp := transport.NewTCP(dir)
	c := &Cluster{place: place, tcp: tcp}
	if cfg.observe {
		c.met = obs.NewRegistry()
	}
	tcp.Instrument(c.met)
	tr := cfg.stack(tcp, c)
	c.inner = sdds.NewCluster(tr, place)
	c.inner.Instrument(c.met)
	c.close = []func() error{tcp.Close}
	if cfg.selfHeal != nil {
		if err := c.enableSelfHealing(*cfg.selfHeal); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// StartLocalTCPCluster spins up n real TCP node daemons on loopback in
// this process and returns a cluster dialed to them — the quickest way
// to exercise the full network stack. Close shuts the daemons down.
func StartLocalTCPCluster(n int, opts ...ClusterOption) (*Cluster, error) {
	if n < 1 {
		n = 1
	}
	cfg := applyOptions(opts)
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := sdds.NewPlacement(ids)
	if err != nil {
		return nil, err
	}
	addrs := make(map[transport.NodeID]string, n)
	listeners := make([]net.Listener, n)
	for i := range ids {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = lis
		addrs[ids[i]] = lis.Addr().String()
	}
	peers := transport.NewTCP(addrs)
	c := &Cluster{place: place, linearScan: cfg.linearScan}
	if cfg.observe {
		c.met = obs.NewRegistry()
	}
	peers.Instrument(c.met)
	c.initStores(cfg.dataDir)
	for i, id := range ids {
		node := sdds.NewNode(id, peers, place)
		if cfg.linearScan {
			node.DisablePostingIndex()
		}
		node.Instrument(c.met)
		if err := c.attachNodeStore(int(id), node); err != nil {
			for _, srv := range c.servers {
				srv.Close() //nolint:errcheck // best-effort unwind
			}
			for _, l := range listeners {
				l.Close()
			}
			c.closeStores() //nolint:errcheck // best-effort unwind
			return nil, err
		}
		srv := transport.NewServer(node.Handler())
		if cfg.shed != nil {
			sp := *cfg.shed
			if sp.Classify == nil {
				sp.Classify = sdds.OpPriority
			}
			sh := transport.NewShedder(sp)
			sh.Instrument(c.met)
			srv.SetShedder(sh)
			c.shedders = append(c.shedders, sh)
		}
		srv.Instrument(c.met)
		c.servers = append(c.servers, srv)
		go srv.Serve(listeners[i])
	}
	client := transport.NewTCP(addrs)
	client.Instrument(c.met)
	tr := cfg.stack(client, c)
	c.tcp = client
	c.peers = peers
	c.inner = sdds.NewCluster(tr, place)
	c.inner.Instrument(c.met)
	c.close = append(c.close, c.closeStores, client.Close, peers.Close)
	for _, srv := range c.servers {
		c.close = append(c.close, srv.Close)
	}
	if err := c.attachMigrationLog(); err != nil {
		c.Close()
		return nil, err
	}
	if cfg.selfHeal != nil {
		if err := c.enableSelfHealing(*cfg.selfHeal); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// initStores prepares the durable-store bookkeeping for clusters that
// host their own nodes. The node map is kept even without a data dir so
// revive and shutdown paths stay uniform.
func (c *Cluster) initStores(dataDir string) {
	c.dataDir = dataDir
	c.nodes = make(map[int]*sdds.Node)
	c.stores = make(map[int]*wal.Store)
	c.recovery = make(map[int]NodeRecovery)
}

// attachNodeStore opens (or reopens) a node's durable store under the
// cluster data dir, replays whatever it holds, and records the recovery
// outcome. Corruption is not an error here: it is detected, recorded,
// and left for a parity restore — the node comes up empty with a reset,
// armed store. Call before the node starts serving traffic.
func (c *Cluster) attachNodeStore(id int, node *sdds.Node) error {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	c.nodes[id] = node
	if c.dataDir == "" {
		return nil
	}
	st, err := wal.Open(wal.OSFS{}, filepath.Join(c.dataDir, fmt.Sprintf("node-%d", id)), wal.Options{})
	if err != nil {
		return fmt.Errorf("esdds: opening node %d store: %w", id, err)
	}
	st.Instrument(c.met)
	out, aerr := node.AttachStore(st)
	rec := NodeRecovery{Outcome: out.String()}
	if aerr != nil {
		rec.Err = aerr.Error()
		if out != wal.OutcomeCorrupt {
			st.Close() //nolint:errcheck // best-effort unwind
			return fmt.Errorf("esdds: attaching node %d store: %w", id, aerr)
		}
	}
	c.stores[id] = st
	c.recovery[id] = rec
	return nil
}

// attachMigrationLog gives the coordinator a durable split/merge
// journal under dataDir/coordinator/, replacing the default in-memory
// ledger. A migration found in-flight in the journal (the previous
// coordinator died mid-handoff) is rolled forward or aborted right
// away — the nodes are already registered and serving by the time the
// constructors call this. Resume failures are not fatal: the intent
// stays journalled and the supervisor (or the next explicit
// ResumeMigrations call) retries. No-op for ephemeral clusters.
func (c *Cluster) attachMigrationLog() error {
	if c.dataDir == "" {
		return nil
	}
	lg, err := sdds.OpenFileMigrationLog(wal.OSFS{}, filepath.Join(c.dataDir, "coordinator"))
	if err != nil {
		return fmt.Errorf("esdds: opening migration log: %w", err)
	}
	inFlight, err := c.inner.AttachMigrationLog(lg)
	if err != nil {
		lg.Close() //nolint:errcheck // best-effort unwind
		return fmt.Errorf("esdds: attaching migration log: %w", err)
	}
	c.close = append(c.close, lg.Close)
	if inFlight > 0 {
		c.inner.ResumeMigrations(context.Background()) //nolint:errcheck // best-effort; journal keeps the intent
	}
	return nil
}

// ResumeMigrations re-drives every split/merge the coordinator's
// journal still records as in-flight, committing or aborting each.
// Returns how many were found. Safe to call on a healthy cluster (it
// finds none) — chaos harnesses call it after reviving nodes.
func (c *Cluster) ResumeMigrations(ctx context.Context) (int, error) {
	return c.inner.ResumeMigrations(ctx)
}

// MigrationStats reports the coordinator's migration ledger: lifetime
// started/committed/aborted counts (durable across restarts with
// WithDataDir), in-process resume count, and migrations currently
// in-flight. Invariant: Started == Committed + Aborted + InFlight.
func (c *Cluster) MigrationStats() sdds.MigrationStats {
	return c.inner.MigrationStats()
}

// closeStores gracefully checkpoints and closes every durable node
// store (no-op for ephemeral clusters and already-killed nodes).
func (c *Cluster) closeStores() error {
	c.storeMu.Lock()
	ids := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	nodes := make([]*sdds.Node, len(ids))
	for i, id := range ids {
		nodes[i] = c.nodes[id]
	}
	c.storeMu.Unlock()
	var first error
	for _, node := range nodes {
		if err := node.CloseStore(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NodeRecovery reports how a durable node's state came to be at its
// most recent (re)start; ok is false for ephemeral nodes (no data dir)
// and dialed clusters.
func (c *Cluster) NodeRecovery(id int) (NodeRecovery, bool) {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	rec, ok := c.recovery[id]
	return rec, ok
}

// Nodes returns the cluster's node count.
func (c *Cluster) Nodes() int {
	return len(c.inner.Transport().Nodes())
}

// Faults returns the fault injector, or nil unless the cluster was
// built with WithFaultInjection. Use it to schedule drops, delays,
// duplicate deliveries, and node blackouts.
func (c *Cluster) Faults() *transport.Faulty { return c.faulty }

// RetryStats returns per-node health accounting from the retry
// middleware (nil unless the cluster was built with a retry option).
func (c *Cluster) RetryStats() []transport.NodeStats {
	if c.retry == nil {
		return nil
	}
	return c.retry.Stats()
}

// ResetBreakers force-closes every node's circuit breaker — call after
// recovering failed nodes so traffic resumes immediately.
func (c *Cluster) ResetBreakers() {
	if c.retry == nil {
		return
	}
	for _, id := range c.inner.Transport().Nodes() {
		c.retry.ResetBreaker(id)
	}
}

// KillNode abruptly removes an in-memory node: its handler is
// deregistered (sends fail) and its state is gone — a crashed site.
// Only supported on memory clusters.
func (c *Cluster) KillNode(id int) error {
	if c.mem == nil {
		return fmt.Errorf("esdds: KillNode requires a memory cluster")
	}
	c.mem.Unregister(transport.NodeID(id))
	// Tear the durable store down without flushing — the crash
	// semantics. Whatever the journal discipline already made durable is
	// exactly what a revival finds.
	c.storeMu.Lock()
	st := c.stores[id]
	c.storeMu.Unlock()
	if st != nil {
		st.Abort()
	}
	return nil
}

// ReviveNode registers a node under the given ID — the spare site
// taking over a killed node's identity. On an ephemeral cluster it
// comes up empty (buckets restorable only by a Guardian); with
// WithDataDir it reopens its durable store first and replays
// checkpoint+journal, so it rejoins already whole and the Supervisor
// skips the parity restore. Only supported on memory clusters.
func (c *Cluster) ReviveNode(id int) error {
	if c.mem == nil {
		return fmt.Errorf("esdds: ReviveNode requires a memory cluster")
	}
	node := sdds.NewNode(transport.NodeID(id), c.peers, c.place)
	if c.linearScan {
		node.DisablePostingIndex()
	}
	node.Instrument(c.met)
	if err := c.attachNodeStore(id, node); err != nil {
		return err
	}
	c.mem.Register(transport.NodeID(id), node.Handler())
	return nil
}

// Guardian is the LH*RS availability layer over a cluster: it keeps
// every node's bucket inventory under Reed–Solomon parity and can
// rebuild up to K simultaneously failed nodes with zero record loss.
type Guardian struct {
	inner *sdds.Guardian
	c     *Cluster
}

// Guardian builds a parity guardian tolerating any k simultaneous node
// failures. Call Sync while the cluster is healthy to (re)establish the
// recovery point.
func (c *Cluster) Guardian(k int) (*Guardian, error) {
	g, err := sdds.NewGuardian(c.inner.Transport(), c.inner.Placement(), k)
	if err != nil {
		return nil, err
	}
	return &Guardian{inner: g, c: c}, nil
}

// K returns the number of tolerated simultaneous node failures.
func (g *Guardian) K() int { return g.inner.K() }

// Sync pulls every node's current image into the parity group. The last
// successful Sync is the recovery point.
func (g *Guardian) Sync(ctx context.Context) error { return g.inner.Sync(ctx) }

// Recover rebuilds the given (dead, already revived-empty) nodes from
// parity and reinstalls their bucket images. More than K dead nodes
// fails loudly. Breakers for the recovered nodes are reset.
func (g *Guardian) Recover(ctx context.Context, nodes ...int) error {
	ids := make([]transport.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = transport.NodeID(n)
	}
	if err := g.inner.Recover(ctx, ids); err != nil {
		return err
	}
	if g.c.retry != nil {
		for _, id := range ids {
			g.c.retry.ResetBreaker(id)
		}
	}
	return nil
}

// Scrub verifies parity against the last-synced images.
func (g *Guardian) Scrub() (bool, error) { return g.inner.Scrub() }

// Close releases transports and stops any in-process daemons.
func (c *Cluster) Close() error {
	var first error
	for _, fn := range c.close {
		if err := fn(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
