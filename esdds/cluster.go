package esdds

import (
	"fmt"
	"net"

	"repro/internal/sdds"
	"repro/internal/transport"
)

// Cluster is a handle to a set of storage nodes: either an in-process
// simulated multicomputer or real TCP daemons.
type Cluster struct {
	inner   *sdds.Cluster
	servers []*transport.Server // only for in-process TCP test clusters
	close   []func() error
}

// NewMemoryCluster simulates a multicomputer of n storage nodes inside
// the current process. Every distributed code path (addressing,
// forwarding, splits, scatter-gather search) runs exactly as it would
// over a network.
func NewMemoryCluster(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	mem := transport.NewMemory()
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := sdds.NewPlacement(ids)
	if err != nil {
		panic("esdds: " + err.Error()) // n >= 1 makes this impossible
	}
	for _, id := range ids {
		node := sdds.NewNode(id, mem, place)
		mem.Register(id, node.Handler())
	}
	return &Cluster{
		inner: sdds.NewCluster(mem, place),
		close: []func() error{mem.Close},
	}
}

// DialCluster connects to running esdds-node daemons. addrs maps node
// IDs (0..n-1, dense) to host:port addresses.
func DialCluster(addrs map[int]string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("esdds: empty cluster address map")
	}
	ids := make([]transport.NodeID, 0, len(addrs))
	dir := make(map[transport.NodeID]string, len(addrs))
	for i := 0; i < len(addrs); i++ {
		addr, ok := addrs[i]
		if !ok {
			return nil, fmt.Errorf("esdds: node IDs must be dense 0..n-1; missing %d", i)
		}
		ids = append(ids, transport.NodeID(i))
		dir[transport.NodeID(i)] = addr
	}
	place, err := sdds.NewPlacement(ids)
	if err != nil {
		return nil, err
	}
	tcp := transport.NewTCP(dir)
	return &Cluster{
		inner: sdds.NewCluster(tcp, place),
		close: []func() error{tcp.Close},
	}, nil
}

// StartLocalTCPCluster spins up n real TCP node daemons on loopback in
// this process and returns a cluster dialed to them — the quickest way
// to exercise the full network stack. Close shuts the daemons down.
func StartLocalTCPCluster(n int) (*Cluster, error) {
	if n < 1 {
		n = 1
	}
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := sdds.NewPlacement(ids)
	if err != nil {
		return nil, err
	}
	addrs := make(map[transport.NodeID]string, n)
	listeners := make([]net.Listener, n)
	for i := range ids {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = lis
		addrs[ids[i]] = lis.Addr().String()
	}
	peers := transport.NewTCP(addrs)
	c := &Cluster{}
	for i, id := range ids {
		node := sdds.NewNode(id, peers, place)
		srv := transport.NewServer(node.Handler())
		c.servers = append(c.servers, srv)
		go srv.Serve(listeners[i])
	}
	client := transport.NewTCP(addrs)
	c.inner = sdds.NewCluster(client, place)
	c.close = append(c.close, client.Close, peers.Close)
	for _, srv := range c.servers {
		c.close = append(c.close, srv.Close)
	}
	return c, nil
}

// Nodes returns the cluster's node count.
func (c *Cluster) Nodes() int {
	return len(c.inner.Transport().Nodes())
}

// Close releases transports and stops any in-process daemons.
func (c *Cluster) Close() error {
	var first error
	for _, fn := range c.close {
		if err := fn(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
