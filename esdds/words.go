package esdds

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/sdds"
	"repro/internal/wordindex"
)

// Word search — the [SWP00] adaptation the paper's conclusion proposes.
// When Config.WordSearch is enabled, Insert additionally stores a word
// blob (the record's sorted, deduplicated HMAC word tokens) in a third
// SDDS file, and SearchWord finds records containing an exact whole
// word with no false positives at all, complementing the substring
// index's approximate matching.

// ErrWordSearchDisabled reports word operations on a store opened
// without Config.WordSearch.
var ErrWordSearchDisabled = errors.New("esdds: word search not enabled in Config")

// SearchWord returns the RIDs of records containing the exact word
// (case-insensitive under the default tokenizer). Unlike the substring
// Search, results are exact, and any word length is searchable.
func (s *Store) SearchWord(ctx context.Context, word []byte) ([]uint64, error) {
	if s.words == nil {
		return nil, ErrWordSearchDisabled
	}
	token := s.words.TokenOf(normalizeWord(word))
	return s.cluster.WordSearch(ctx, sdds.FileWords, token[:])
}

// SearchWordRecords runs SearchWord and fetches + decrypts every hit.
func (s *Store) SearchWordRecords(ctx context.Context, word []byte) ([]Record, error) {
	rids, err := s.SearchWord(ctx, word)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(rids))
	for _, rid := range rids {
		content, err := s.Get(ctx, rid)
		if err != nil {
			return nil, fmt.Errorf("esdds: fetching hit %d: %w", rid, err)
		}
		out = append(out, Record{RID: rid, Content: content})
	}
	return out, nil
}

// normalizeWord upper-cases ASCII letters so queries match the default
// tokenizer's normalization.
func normalizeWord(w []byte) []byte {
	out := make([]byte, len(w))
	for i, c := range w {
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

// insertWords stores the record's word blob (replacing any previous
// one); deleteWords removes it.
func (s *Store) insertWords(ctx context.Context, rid uint64, content []byte) error {
	if s.words == nil {
		return nil
	}
	blob := wordindex.Blob(s.words.Tokens(content))
	return s.cluster.Put(ctx, sdds.FileWords, rid, blob)
}

func (s *Store) deleteWords(ctx context.Context, rid uint64) error {
	if s.words == nil {
		return nil
	}
	_, err := s.cluster.Delete(ctx, sdds.FileWords, rid)
	return err
}
