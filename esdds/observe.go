package esdds

import (
	"repro/internal/obs"
)

// WithObservability instruments every layer of the cluster into one
// metrics registry: transport sends, retries, breaker activity and
// injected faults; per-node opcode latencies and search-path counters;
// WAL append/fsync/checkpoint timings (with WithDataDir); and the
// self-healing loop's detector transitions, repair phases, and
// guardian sync/recover durations (with WithSelfHealing). Instrumented
// searches also record per-op traces (stage timings and IAM hop
// counts).
//
// Retrieve the registry with Cluster.Metrics(); expose it with its
// Handler (a /metrics endpoint), WriteText, or PublishExpvar. All
// instruments are registered eagerly, so every metric name appears in
// the exposition (with a zero value) as soon as the cluster is built.
func WithObservability() ClusterOption {
	return func(c *clusterConfig) { c.observe = true }
}

// Metrics returns the cluster's metrics registry, or nil unless the
// cluster was built with WithObservability.
func (c *Cluster) Metrics() *obs.Registry { return c.met }
