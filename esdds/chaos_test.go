package esdds

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/transport"
)

// chaosRetryPolicy keeps backoff pauses in the microsecond range so the
// suite stays fast while still exercising every retry code path.
func chaosRetryPolicy() transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    2 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// TestClusterSurvivesNodeFailuresEndToEnd is the acceptance scenario for
// the resilience stack, over the public API only:
//
//  1. a seeded workload runs against a lossy network with zero
//     client-visible errors (retries mask the injected drops),
//  2. f <= k nodes are killed mid-operation; SearchBestEffort degrades
//     gracefully and names exactly the dead nodes,
//  3. the LH*RS guardian recovers the dead nodes from parity, after
//     which a full Search returns the pre-failure result set.
func TestClusterSurvivesNodeFailuresEndToEnd(t *testing.T) {
	const (
		nodes = 6
		k     = 2 // parity shards = tolerated simultaneous failures
		seed  = 20060410
	)
	cluster := NewMemoryCluster(nodes,
		WithFaultInjection(seed),
		WithRetry(chaosRetryPolicy()),
		WithRetrySeed(seed),
	)
	defer cluster.Close()

	store, err := Open(cluster, KeyFromPassphrase("chaos"), Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 4, // force splits so every node ends up holding buckets
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Phase 1 — workload through a lossy, slow network. Drops and delays
	// only; duplicate delivery stays off because inserts trigger bucket
	// splits, which are not idempotent.
	cluster.Faults().SetDefault(transport.Fault{
		Drop:      0.15,
		DelayProb: 0.1,
		Delay:     100 * time.Microsecond,
	})
	var wantHits []uint64
	for rid := uint64(1); rid <= 60; rid++ {
		content := fmt.Sprintf("RECORD %04d ROUTINE TRAFFIC", rid)
		if rid%3 == 0 {
			content = fmt.Sprintf("RECORD %04d CARRIES BEACON PAYLOAD", rid)
			wantHits = append(wantHits, rid)
		}
		if err := store.Insert(ctx, rid, []byte(content)); err != nil {
			t.Fatalf("Insert(%d) not masked by retries: %v", rid, err)
		}
	}
	var dropped, retries uint64
	for _, st := range cluster.Faults().Stats() {
		dropped += st.Dropped
	}
	for _, st := range cluster.RetryStats() {
		retries += st.Retries
	}
	if dropped == 0 || retries == 0 {
		t.Fatalf("chaos did not engage: dropped=%d retries=%d", dropped, retries)
	}

	baseline, err := store.Search(ctx, []byte("BEACON PAYLOAD"), SearchVerified)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(baseline, func(i, j int) bool { return baseline[i] < baseline[j] })
	if len(baseline) != len(wantHits) {
		t.Fatalf("baseline search = %v, want %v", baseline, wantHits)
	}
	for i := range wantHits {
		if baseline[i] != wantHits[i] {
			t.Fatalf("baseline search = %v, want %v", baseline, wantHits)
		}
	}

	// Establish the recovery point on a quiet network.
	cluster.Faults().ClearFaults()
	guard, err := cluster.Guardian(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, err := guard.Scrub(); err != nil || !ok {
		t.Fatalf("scrub: %v %v", ok, err)
	}

	// Phase 2 — kill f = k nodes two different ways: node 1 crashes
	// outright (unknown to the transport, fails fast), node 4 is
	// partitioned (sends time out through retry exhaustion). Both must
	// appear in the failed list — and nothing else.
	dead := []int{1, 4}
	if err := cluster.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := cluster.KillNode(4); err != nil {
		t.Fatal(err)
	}
	cluster.Faults().Blackout(transport.NodeID(4))

	rids, failed, err := store.SearchBestEffort(ctx, []byte("BEACON PAYLOAD"), SearchVerified)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(failed)
	if len(failed) != len(dead) || failed[0] != dead[0] || failed[1] != dead[1] {
		t.Fatalf("failed nodes = %v, want exactly %v", failed, dead)
	}
	if len(rids) > len(baseline) {
		t.Fatalf("degraded search over-approximated: %d hits > baseline %d", len(rids), len(baseline))
	}
	// A full-exactness Search must refuse to answer.
	if _, err := store.Search(ctx, []byte("BEACON PAYLOAD"), SearchVerified); err == nil {
		t.Fatal("Search succeeded with dead nodes — silent under-approximation")
	}

	// Phase 3 — recovery: spare nodes take over the dead IDs, the
	// guardian rebuilds their buckets from parity, traffic resumes.
	cluster.Faults().Restore(transport.NodeID(4))
	for _, id := range dead {
		if err := cluster.ReviveNode(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := guard.Recover(ctx, dead...); err != nil {
		t.Fatalf("recovery of %v failed: %v", dead, err)
	}

	healed, err := store.Search(ctx, []byte("BEACON PAYLOAD"), SearchVerified)
	if err != nil {
		t.Fatalf("search after recovery: %v", err)
	}
	sort.Slice(healed, func(i, j int) bool { return healed[i] < healed[j] })
	if len(healed) != len(baseline) {
		t.Fatalf("post-recovery search = %v, want baseline %v", healed, baseline)
	}
	for i := range baseline {
		if healed[i] != baseline[i] {
			t.Fatalf("post-recovery search = %v, want baseline %v", healed, baseline)
		}
	}
	// Records themselves are intact too, not just the index.
	for _, rid := range wantHits {
		got, err := store.Get(ctx, rid)
		if err != nil {
			t.Fatalf("Get(%d) after recovery: %v", rid, err)
		}
		if want := fmt.Sprintf("RECORD %04d CARRIES BEACON PAYLOAD", rid); string(got) != want {
			t.Fatalf("Get(%d) = %q, want %q", rid, got, want)
		}
	}
	_, failed, err = store.SearchBestEffort(ctx, []byte("BEACON PAYLOAD"), SearchVerified)
	if err != nil || len(failed) != 0 {
		t.Fatalf("failures reported after recovery: %v %v", failed, err)
	}
}

// TestGuardianRefusesBeyondKOverPublicAPI: killing k+1 nodes must make
// recovery fail loudly — the MDS bound, surfaced to the API user.
func TestGuardianRefusesBeyondKOverPublicAPI(t *testing.T) {
	cluster := NewMemoryCluster(5, WithRetry(chaosRetryPolicy()))
	defer cluster.Close()
	store, err := Open(cluster, KeyFromPassphrase("bound"), Config{ChunkSize: 4, Chunkings: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for rid := uint64(1); rid <= 20; rid++ {
		if err := store.Insert(ctx, rid, []byte(fmt.Sprintf("RECORD %d", rid))); err != nil {
			t.Fatal(err)
		}
	}
	guard, err := cluster.Guardian(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 2} { // f = k+1 = 2
		if err := cluster.KillNode(id); err != nil {
			t.Fatal(err)
		}
		if err := cluster.ReviveNode(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := guard.Recover(ctx, 0, 2); err == nil {
		t.Fatal("recovery of k+1 failures succeeded — MDS bound violated")
	}
}

// TestKillAndReviveRequireMemoryCluster documents the API restriction.
func TestKillAndReviveRequireMemoryCluster(t *testing.T) {
	cluster, err := StartLocalTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.KillNode(0); err == nil {
		t.Error("KillNode on a TCP cluster succeeded")
	}
	if err := cluster.ReviveNode(0); err == nil {
		t.Error("ReviveNode on a TCP cluster succeeded")
	}
}
