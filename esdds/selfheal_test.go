package esdds

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sdds"
)

// fastSelfHealing tunes the availability loop for test speed: quick
// probes, fast confirmation, and short debounce. Semantics are the
// production ones — only the clocks differ.
func fastSelfHealing(parity int) SelfHealingConfig {
	return SelfHealingConfig{
		Parity:        parity,
		ProbeInterval: 2 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		DownAfter:     1,
		UpAfter:       1,
		Debounce:      10 * time.Millisecond,
		RepairBackoff: 10 * time.Millisecond,
	}
}

// TestSelfHealingClusterEndToEnd is the acceptance scenario for the
// self-healing availability loop, over the public API only:
//
//  1. a workload loads a store and establishes a recovery point,
//  2. k nodes are killed mid-workload; every Search keeps returning the
//     complete baseline with zero lost results (down nodes served
//     degraded from last-synced images),
//  3. the supervisor detects, revives, and restores the dead nodes
//     automatically — no operator call — and the cluster converges back
//     to fully healthy with all records intact.
func TestSelfHealingClusterEndToEnd(t *testing.T) {
	const (
		nodes = 6
		k     = 2
		seed  = 20060410
	)
	cluster := NewMemoryCluster(nodes,
		WithRetry(chaosRetryPolicy()),
		WithRetrySeed(seed),
		WithSelfHealing(fastSelfHealing(k)),
	)
	defer cluster.Close()
	heal := cluster.SelfHealing()
	if heal == nil {
		t.Fatal("SelfHealing handle missing")
	}

	store, err := Open(cluster, KeyFromPassphrase("self-heal"), Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 4, // force splits so every node holds buckets
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	marker := []byte("GRIDLOCK")
	want := make(map[uint64][]byte)
	for rid := uint64(1); rid <= 60; rid++ {
		content := []byte(fmt.Sprintf("record %04d perfectly ordinary text", rid))
		if rid%5 == 0 {
			content = []byte(fmt.Sprintf("record %04d carries the GRIDLOCK marker", rid))
		}
		if err := store.Insert(ctx, rid, content); err != nil {
			t.Fatal(err)
		}
		want[rid] = content
	}
	baseline, err := store.Search(ctx, marker, SearchVerified)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != 12 {
		t.Fatalf("baseline = %v, want the 12 GRIDLOCK records", baseline)
	}
	if err := heal.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill the full parity budget mid-workload.
	for _, n := range []int{1, 4} {
		if err := cluster.KillNode(n); err != nil {
			t.Fatal(err)
		}
	}

	// Until convergence, every single search must return the complete
	// baseline — degraded serving bridges the gap, repair closes it.
	deadline := time.After(10 * time.Second)
	sawDegraded := false
	for healthy := false; !healthy; {
		out, err := store.SearchDetailed(ctx, marker, SearchVerified)
		if err != nil {
			t.Fatalf("search during failure/repair: %v", err)
		}
		if !out.Complete {
			t.Fatalf("search lost results mid-repair: %+v", out)
		}
		if len(out.RIDs) != len(baseline) {
			t.Fatalf("search returned %v, want baseline %v", out.RIDs, baseline)
		}
		for i := range out.RIDs {
			if out.RIDs[i] != baseline[i] {
				t.Fatalf("search diverged: %v, want %v", out.RIDs, baseline)
			}
		}
		if len(out.DegradedNodes) > 0 {
			sawDegraded = true
			if out.StaleSince.IsZero() {
				t.Fatal("degraded result missing StaleSince")
			}
		}
		hctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
		healthy = heal.AwaitHealthy(hctx) == nil
		cancel()
		select {
		case <-deadline:
			t.Fatalf("cluster never converged; health=%+v journal=%+v",
				cluster.ClusterHealth(), heal.Journal())
		default:
		}
	}
	if !sawDegraded {
		t.Log("note: repair won the race before any degraded search was observed")
	}

	// Converged: repairs journaled, records intact, strict search exact.
	if n := heal.Repairs(); n != 2 {
		t.Errorf("Repairs = %d, want 2", n)
	}
	completed := map[int]bool{}
	for _, r := range heal.Journal() {
		if r.Phase == sdds.RepairCompleted {
			completed[int(r.Node)] = true
		}
	}
	if !completed[1] || !completed[4] {
		t.Errorf("journal missing completions: %+v", heal.Journal())
	}
	for rid, content := range want {
		got, err := store.Get(ctx, rid)
		if err != nil {
			t.Fatalf("Get(%d) after repair: %v", rid, err)
		}
		if string(got) != string(content) {
			t.Fatalf("Get(%d) corrupted after repair", rid)
		}
	}
	rids, err := store.Search(ctx, marker, SearchVerified)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != len(baseline) {
		t.Fatalf("post-repair search = %v, want %v", rids, baseline)
	}

	// The repaired cluster accepts and finds new writes.
	if err := store.Insert(ctx, 1000, []byte("late GRIDLOCK arrival")); err != nil {
		t.Fatalf("insert after repair: %v", err)
	}
	rids, err = store.Search(ctx, marker, SearchVerified)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != len(baseline)+1 {
		t.Fatalf("post-repair insert not searchable: %v", rids)
	}
	health := cluster.ClusterHealth()
	if !health.SelfHealing || health.Alarm != "" || len(health.Down) != 0 {
		t.Errorf("ClusterHealth after convergence = %+v", health)
	}
	if health.SyncSeq == 0 {
		t.Error("no recovery point recorded in ClusterHealth")
	}
}

// TestSelfHealingAlarmsBeyondBudget: k+1 failures must raise the alarm
// and refuse automatic repair — no corruption, no false completeness —
// over the public API.
func TestSelfHealingAlarmsBeyondBudget(t *testing.T) {
	const k = 1
	cluster := NewMemoryCluster(4,
		WithRetry(chaosRetryPolicy()),
		WithSelfHealing(fastSelfHealing(k)),
	)
	defer cluster.Close()
	heal := cluster.SelfHealing()

	store, err := Open(cluster, KeyFromPassphrase("alarm"), Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for rid := uint64(1); rid <= 40; rid++ {
		if err := store.Insert(ctx, rid, []byte(fmt.Sprintf("record %04d with GRIDLOCK", rid))); err != nil {
			t.Fatal(err)
		}
	}
	if err := heal.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	cluster.KillNode(1)
	cluster.KillNode(2)

	// Detection is asynchronous: wait for the supervisor to confirm both
	// failures and raise the alarm.
	for deadline := time.Now().Add(10 * time.Second); heal.Alarm() == ""; {
		if time.Now().After(deadline) {
			t.Fatalf("alarm never raised; journal=%+v", heal.Journal())
		}
		time.Sleep(time.Millisecond)
	}
	actx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	err = heal.AwaitHealthy(actx)
	if !errors.Is(err, sdds.ErrRepairBudgetExceeded) {
		t.Fatalf("AwaitHealthy = %v, want ErrRepairBudgetExceeded", err)
	}
	if n := heal.Repairs(); n != 0 {
		t.Fatalf("Repairs = %d despite exceeded budget", n)
	}

	// Searches must not pretend completeness: the dead nodes surface as
	// failed, and nothing spurious is returned.
	out, err := store.SearchDetailed(ctx, []byte("GRIDLOCK"), SearchFast)
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete {
		t.Fatal("search claimed completeness beyond the parity budget")
	}
	if len(out.FailedNodes) != 2 {
		t.Fatalf("FailedNodes = %v, want the two dead nodes", out.FailedNodes)
	}
	// Surviving nodes' data is untouched.
	for rid := uint64(1); rid <= 40; rid++ {
		got, err := store.Get(ctx, rid)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // lived on a dead node; lost until operator acts
			}
			// transport failure against a dead node's bucket — also fine
			continue
		}
		if string(got) != fmt.Sprintf("record %04d with GRIDLOCK", rid) {
			t.Fatalf("surviving record %d corrupted: %q", rid, got)
		}
	}
	health := cluster.ClusterHealth()
	if health.Alarm == "" || len(health.Down) != 2 {
		t.Errorf("ClusterHealth = %+v, want alarm with 2 down nodes", health)
	}
}

// TestSelfHealingWorksWithoutRetryLayer: the loop must run on active
// probes alone (no passive signals without the retry middleware).
func TestSelfHealingWorksWithoutRetryLayer(t *testing.T) {
	cluster := NewMemoryCluster(3, WithSelfHealing(fastSelfHealing(1)))
	defer cluster.Close()
	heal := cluster.SelfHealing()

	store, err := Open(cluster, KeyFromPassphrase("probes-only"), Config{
		ChunkSize:     4,
		MaxBucketLoad: 4, // splits spread records across all nodes
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for rid := uint64(1); rid <= 20; rid++ {
		if err := store.Insert(ctx, rid, []byte(fmt.Sprintf("plain record %d", rid))); err != nil {
			t.Fatal(err)
		}
	}
	if err := heal.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	cluster.KillNode(2)
	// Active probes alone must detect and repair: wait for the completed
	// repair, then for full convergence.
	for deadline := time.Now().Add(10 * time.Second); heal.Repairs() == 0; {
		if time.Now().After(deadline) {
			t.Fatalf("probe-only repair never happened; journal=%+v", heal.Journal())
		}
		time.Sleep(time.Millisecond)
	}
	actx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := heal.AwaitHealthy(actx); err != nil {
		t.Fatalf("probe-only self-healing never converged: %v", err)
	}
	for rid := uint64(1); rid <= 20; rid++ {
		got, err := store.Get(ctx, rid)
		if err != nil || string(got) != fmt.Sprintf("plain record %d", rid) {
			t.Fatalf("Get(%d) after probe-only repair = %q, %v", rid, got, err)
		}
	}
}

// TestClusterHealthWithoutSelfHealing: the snapshot must degrade
// gracefully on clusters without the availability loop.
func TestClusterHealthWithoutSelfHealing(t *testing.T) {
	cluster := NewMemoryCluster(2,
		WithFaultInjection(7),
		WithDefaultRetry(),
	)
	defer cluster.Close()
	if cluster.SelfHealing() != nil {
		t.Fatal("SelfHealing handle on a plain cluster")
	}
	store, err := Open(cluster, KeyFromPassphrase("plain"), Config{ChunkSize: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for rid := uint64(1); rid <= 8; rid++ {
		if err := store.Insert(ctx, rid, []byte("some record content")); err != nil {
			t.Fatal(err)
		}
	}
	h := cluster.ClusterHealth()
	if h.SelfHealing || len(h.Nodes) != 2 {
		t.Fatalf("ClusterHealth = %+v", h)
	}
	sawFaultStats := false
	for _, n := range h.Nodes {
		if n.State != "n/a" {
			t.Fatalf("detector state without self-healing = %q", n.State)
		}
		if n.Faults != nil {
			sawFaultStats = true
		}
	}
	if !sawFaultStats {
		t.Fatal("fault-injection stats missing on a fault-injected cluster with traffic")
	}
	if h.SyncSeq != 0 || !h.LastSync.IsZero() {
		t.Fatalf("recovery point reported without a guardian: %+v", h)
	}
}
