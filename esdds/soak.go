package esdds

import (
	"context"

	"repro/internal/sdds"
)

// SoakClusterOptions is the option set the soak harness (cmd/esdds-soak)
// runs clusters with: full observability (client-side histograms plus
// the counters the harness scrapes), the default retry/breaker policy
// so transient TCP hiccups surface as retry counters instead of failed
// ops, and a fixed jitter seed so two soaks with the same seed schedule
// identical backoff pauses.
func SoakClusterOptions(seed int64) []ClusterOption {
	return []ClusterOption{
		WithObservability(),
		WithDefaultRetry(),
		WithRetrySeed(seed),
	}
}

// BucketPlacement locates one bucket of the store on the cluster, with
// its current load — the server-side census behind the soak harness's
// growth accounting ("which nodes did the file actually spread to").
type BucketPlacement struct {
	// File is "records" or "index".
	File string
	// Node is the hosting cluster node.
	Node int
	// Addr is the bucket's LH* address; Level its split level.
	Addr  uint64
	Level uint
	// Size is the number of entries currently in the bucket.
	Size int
}

// Inventory asks every node for its buckets of both SDDS files. The
// result is the cluster's own account of where the file has grown,
// which the soak harness cross-checks against client-side split
// counters and uses to report how many nodes the load actually reached.
func (s *Store) Inventory(ctx context.Context) ([]BucketPlacement, error) {
	var out []BucketPlacement
	for _, f := range []struct {
		id   sdds.FileID
		name string
	}{
		{sdds.FileRecords, "records"},
		{sdds.FileIndex, "index"},
	} {
		infos, err := s.cluster.BucketInventory(ctx, f.id)
		if err != nil {
			return nil, err
		}
		for _, b := range infos {
			out = append(out, BucketPlacement{
				File:  f.name,
				Node:  int(b.Node),
				Addr:  b.Addr,
				Level: b.Level,
				Size:  b.Size,
			})
		}
	}
	return out, nil
}
