package esdds

import (
	"context"
	"time"

	"repro/internal/sdds"
	"repro/internal/transport"
)

// SoakClusterOptions is the option set the soak harness (cmd/esdds-soak)
// runs clusters with: full observability (client-side histograms plus
// the counters the harness scrapes), the default retry/breaker policy
// so transient TCP hiccups surface as retry counters instead of failed
// ops, and a fixed jitter seed so two soaks with the same seed schedule
// identical backoff pauses.
func SoakClusterOptions(seed int64) []ClusterOption {
	return []ClusterOption{
		WithObservability(),
		WithDefaultRetry(),
		WithRetrySeed(seed),
	}
}

// OverloadClusterOptions is SoakClusterOptions plus the full overload-
// control stack (DESIGN.md §13), for soaks that deliberately offer ~3x
// the cluster's capacity and gate on graceful degradation:
//
//   - server-side admission control, so saturation surfaces as prompt
//     ErrOverloaded rejections instead of unbounded queueing;
//   - a retry budget, so rejections cannot amplify into a retry storm
//     (the budget caps retries near 10% of successes, with burst
//     headroom for the transient spikes a healthy soak still has);
//   - hedged reads, so the latency tail of admitted work stays bounded
//     while queues are deep;
//   - self-healing with deliberately patient detection (confirming a
//     node down takes ~25s of consecutive probe failures), which the
//     soak gates at zero repairs: overload must read as backpressure,
//     never as node death.
func OverloadClusterOptions(seed int64) []ClusterOption {
	retry := transport.DefaultRetryPolicy()
	retry.RetryBudget = 0.1
	retry.BudgetBurst = 50
	return []ClusterOption{
		WithObservability(),
		WithRetry(retry),
		WithRetrySeed(seed),
		WithAdmissionControl(transport.ShedPolicy{}),
		WithHedging(transport.HedgePolicy{}),
		WithSelfHealing(SelfHealingConfig{
			Parity:        1,
			ProbeInterval: 250 * time.Millisecond,
			ProbeTimeout:  5 * time.Second,
			DownAfter:     5,
		}),
	}
}

// BucketPlacement locates one bucket of the store on the cluster, with
// its current load — the server-side census behind the soak harness's
// growth accounting ("which nodes did the file actually spread to").
type BucketPlacement struct {
	// File is "records" or "index".
	File string
	// Node is the hosting cluster node.
	Node int
	// Addr is the bucket's LH* address; Level its split level.
	Addr  uint64
	Level uint
	// Size is the number of entries currently in the bucket.
	Size int
}

// Inventory asks every node for its buckets of both SDDS files. The
// result is the cluster's own account of where the file has grown,
// which the soak harness cross-checks against client-side split
// counters and uses to report how many nodes the load actually reached.
func (s *Store) Inventory(ctx context.Context) ([]BucketPlacement, error) {
	var out []BucketPlacement
	for _, f := range []struct {
		id   sdds.FileID
		name string
	}{
		{sdds.FileRecords, "records"},
		{sdds.FileIndex, "index"},
	} {
		infos, err := s.cluster.BucketInventory(ctx, f.id)
		if err != nil {
			return nil, err
		}
		for _, b := range infos {
			out = append(out, BucketPlacement{
				File:  f.name,
				Node:  int(b.Node),
				Addr:  b.Addr,
				Level: b.Level,
				Size:  b.Size,
			})
		}
	}
	return out, nil
}
