package esdds

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/phonebook"
)

func TestCodebookPersistenceRoundTrip(t *testing.T) {
	entries := phonebook.Generate(300, 11)
	corpus := phonebook.Names(entries)
	cluster := NewMemoryCluster(3)
	defer cluster.Close()
	key := KeyFromPassphrase("cb")
	cfg := Config{ChunkSize: 2, Chunkings: 2, SymbolCodes: 16}

	first, err := Open(cluster, key, cfg, corpus)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, e := range entries[:50] {
		if err := first.Insert(ctx, uint64(i), []byte(e.Name)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := first.WriteCodebook(&buf); err != nil {
		t.Fatal(err)
	}

	// A second client loads the persisted codebook instead of
	// retraining and must see identical search behaviour.
	second, err := OpenWithCodebook(cluster, key, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"MARTINEZ", "NGUYEN", "WONG", "CHAN"} {
		if len(q) < first.MinQueryLen() {
			continue
		}
		a, err := first.Search(ctx, []byte(q), SearchFast)
		if err != nil {
			t.Fatal(err)
		}
		b, err := second.Search(ctx, []byte(q), SearchFast)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %q: first client %v, second client %v", q, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %q: first client %v, second client %v", q, a, b)
			}
		}
	}
	// And the second client's inserts are searchable by the first.
	if err := second.Insert(ctx, 9999, []byte("ZELENSKY OLEKSANDRA")); err != nil {
		t.Fatal(err)
	}
	rids, err := first.SearchRecordsFiltered(ctx, []byte("ZELENSKY"), SearchFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 || rids[0].RID != 9999 {
		t.Errorf("cross-client search: %+v", rids)
	}
}

func TestWriteCodebookWithoutStage2(t *testing.T) {
	store := openMem(t, Config{ChunkSize: 4, Chunkings: 2}, nil)
	var buf bytes.Buffer
	if err := store.WriteCodebook(&buf); err == nil {
		t.Error("store without Stage-2 wrote a codebook")
	}
}

func TestOpenWithCodebookValidation(t *testing.T) {
	entries := phonebook.Generate(100, 12)
	corpus := phonebook.Names(entries)
	cluster := NewMemoryCluster(2)
	defer cluster.Close()
	key := KeyFromPassphrase("cb2")

	sym, err := Open(cluster, key, Config{ChunkSize: 2, Chunkings: 2, SymbolCodes: 16}, corpus)
	if err != nil {
		t.Fatal(err)
	}
	var symBuf bytes.Buffer
	if err := sym.WriteCodebook(&symBuf); err != nil {
		t.Fatal(err)
	}
	raw := symBuf.Bytes()

	// Garbage input.
	if _, err := OpenWithCodebook(cluster, key, Config{ChunkSize: 2, SymbolCodes: 16}, bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage codebook accepted")
	}
	// Count mismatch.
	if _, err := OpenWithCodebook(cluster, key, Config{ChunkSize: 2, SymbolCodes: 32}, bytes.NewReader(raw)); err == nil {
		t.Error("code-count mismatch accepted")
	}
	// Kind mismatch: symbol codebook for ChunkCodes config.
	if _, err := OpenWithCodebook(cluster, key, Config{ChunkSize: 2, ChunkCodes: 16}, bytes.NewReader(raw)); err == nil {
		t.Error("kind mismatch accepted")
	}
	// No Stage-2 requested at all.
	if _, err := OpenWithCodebook(cluster, key, Config{ChunkSize: 2}, bytes.NewReader(raw)); err == nil {
		t.Error("no-encoding config accepted")
	}
	// Chunk-level round trip.
	ch, err := Open(cluster, key, Config{ChunkSize: 2, Chunkings: 2, ChunkCodes: 16}, corpus)
	if err != nil {
		t.Fatal(err)
	}
	var chBuf bytes.Buffer
	if err := ch.WriteCodebook(&chBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWithCodebook(cluster, key, Config{ChunkSize: 2, Chunkings: 2, ChunkCodes: 16}, &chBuf); err != nil {
		t.Errorf("chunk-level codebook rejected: %v", err)
	}
}

func TestSearchShort(t *testing.T) {
	// §2.3 kludge: a query of MinQueryLen-1 symbols is expanded with
	// every alphabet symbol.
	store := openMem(t, Config{ChunkSize: 4, Chunkings: 4}, nil)
	ctx := context.Background()
	names := map[uint64]string{
		1: "YUAN LI",      // contains "YUA" mid-word
		2: "WONG YUA",     // ends with "YUA" (padding case)
		3: "MARTINEZ ANA", // no YUA
	}
	for rid, n := range names {
		if err := store.Insert(ctx, rid, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	if store.MinQueryLen() != 4 {
		t.Fatalf("MinQueryLen = %d", store.MinQueryLen())
	}
	rids, err := store.SearchShort(ctx, []byte("YUA"), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, r := range rids {
		got[r] = true
	}
	if !got[1] || !got[2] {
		t.Errorf("SearchShort missed occurrences: %v", rids)
	}
	if got[3] {
		t.Errorf("SearchShort false hit on record 3: %v", rids)
	}
	// Wrong length rejected.
	if _, err := store.SearchShort(ctx, []byte("YU"), nil); err == nil {
		t.Error("wrong-length short query accepted")
	}
}
