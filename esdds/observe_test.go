package esdds

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sdds"
	"repro/internal/transport"
)

// observeCorpus inserts n records with predictable contents and returns
// them keyed by RID.
func observeCorpus(t *testing.T, store *Store, n int) map[uint64]string {
	t.Helper()
	ctx := context.Background()
	out := make(map[uint64]string, n)
	for i := 0; i < n; i++ {
		content := fmt.Sprintf("RECORD NUMBER %04d PAYLOAD", i)
		rid := uint64(100 + i)
		if err := store.Insert(ctx, rid, []byte(content)); err != nil {
			t.Fatalf("insert %d: %v", rid, err)
		}
		out[rid] = content
	}
	return out
}

// TestObservabilityChaosMetricInvariants runs the chaos workload on a
// fully instrumented cluster and cross-checks every layer's counters
// against the components' own accounting: injected faults, retry
// attempts, node search paths, and client operations must all agree.
func TestObservabilityChaosMetricInvariants(t *testing.T) {
	const seed = 20060410
	cluster := NewMemoryCluster(4,
		WithObservability(),
		WithFaultInjection(seed),
		WithRetry(chaosRetryPolicy()),
		WithRetrySeed(seed),
	)
	defer cluster.Close()
	reg := cluster.Metrics()
	if reg == nil {
		t.Fatal("Metrics() returned nil with WithObservability")
	}

	store, err := Open(cluster, KeyFromPassphrase("obs-chaos"), Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cluster.Faults().SetDefault(transport.Fault{Drop: 0.05, DelayProb: 0.2, Delay: time.Millisecond})
	const nRecs = 40
	corpus := observeCorpus(t, store, nRecs)

	const nQueries = 8
	for i := 0; i < nQueries; i++ {
		want := uint64(100 + i*4)
		rids, err := store.Search(ctx, []byte(fmt.Sprintf("NUMBER %04d", i*4)), SearchFast)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range rids {
			found = found || r == want
		}
		if !found {
			t.Fatalf("query %d missed rid %d (got %v)", i, want, rids)
		}
	}
	cluster.Faults().SetDefault(transport.Fault{})

	// Injected-fault counters mirror the injector's own accounting.
	var sends, dropped, delayed uint64
	for _, fs := range cluster.Faults().Stats() {
		sends += fs.Sends
		dropped += fs.Dropped
		delayed += fs.Delayed
	}
	if got := reg.CounterValue("transport_fault_sends_total"); got != sends {
		t.Errorf("transport_fault_sends_total = %d, want %d", got, sends)
	}
	if got := reg.CounterValue("transport_fault_drops_total"); got != dropped {
		t.Errorf("transport_fault_drops_total = %d, want %d", got, dropped)
	}
	if got := reg.CounterValue("transport_fault_delays_total"); got != delayed {
		t.Errorf("transport_fault_delays_total = %d, want %d", got, delayed)
	}
	if dropped == 0 {
		t.Error("chaos run injected no drops; invariants not exercised")
	}

	// Retry layer: every attempt either succeeded or failed, and its own
	// per-node stats agree with the registry.
	attempts := reg.CounterValue("transport_retry_attempts_total")
	succ := reg.CounterValue("transport_retry_attempt_successes_total")
	fail := reg.CounterValue("transport_retry_attempt_failures_total")
	if attempts != succ+fail {
		t.Errorf("attempts(%d) != successes(%d) + failures(%d)", attempts, succ, fail)
	}
	var statSends, statRetries uint64
	for _, st := range cluster.RetryStats() {
		statSends += st.Sends
		statRetries += st.Retries
	}
	if got := reg.CounterValue("transport_retry_sends_total"); got != statSends {
		t.Errorf("transport_retry_sends_total = %d, want %d", got, statSends)
	}
	if got := reg.CounterValue("transport_retry_retries_total"); got != statRetries {
		t.Errorf("transport_retry_retries_total = %d, want %d", got, statRetries)
	}

	// Node layer: search-path split and per-op histograms.
	searches := reg.CounterValue("node_searches_total")
	posting := reg.CounterValue("node_posting_searches_total")
	linear := reg.CounterValue("node_linear_searches_total")
	if posting+linear != searches {
		t.Errorf("posting(%d) + linear(%d) != searches(%d)", posting, linear, searches)
	}
	if searches == 0 {
		t.Error("no node searches recorded")
	}
	if snap := reg.HistogramSnapshot("node_op_search_ns"); snap.Count != searches {
		t.Errorf("node_op_search_ns count = %d, want %d", snap.Count, searches)
	}
	if verified, cand := reg.CounterValue("node_posting_verified_total"), reg.CounterValue("node_posting_candidates_total"); verified > cand {
		t.Errorf("posting_verified(%d) > posting_candidates(%d)", verified, cand)
	}

	// Client layer: one Put per insert, one search per query, and the
	// search latency histogram saw every query.
	if got := reg.CounterValue("cluster_puts_total"); got != nRecs {
		t.Errorf("cluster_puts_total = %d, want %d", got, nRecs)
	}
	if got := reg.CounterValue("cluster_searches_total"); got != nQueries {
		t.Errorf("cluster_searches_total = %d, want %d", got, nQueries)
	}
	if snap := reg.HistogramSnapshot("cluster_search_ns"); snap.Count != nQueries {
		t.Errorf("cluster_search_ns count = %d, want %d", snap.Count, nQueries)
	}
	_ = corpus
}

// TestObservabilityDurabilityMetricInvariants checks the WAL counters
// over a durable cluster: every acknowledged mutation fsynced (fsyncs
// >= appends), and a kill/revive cycle replays the journal.
func TestObservabilityDurabilityMetricInvariants(t *testing.T) {
	dir := t.TempDir()
	cluster := NewMemoryCluster(3, WithObservability(), WithDataDir(dir))
	reg := cluster.Metrics()
	store, err := Open(cluster, KeyFromPassphrase("obs-wal"), Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const nRecs = 20
	observeCorpus(t, store, nRecs)

	appends := reg.CounterValue("wal_appends_total")
	fsyncs := reg.CounterValue("wal_fsyncs_total")
	// Every insert journals at least its record put; splits and index
	// inserts journal more.
	if appends < nRecs {
		t.Errorf("wal_appends_total = %d, want >= %d (one per acknowledged put)", appends, nRecs)
	}
	if fsyncs < appends {
		t.Errorf("wal_fsyncs_total = %d, want >= appends = %d", fsyncs, appends)
	}
	if snap := reg.HistogramSnapshot("wal_append_ns"); snap.Count != appends {
		t.Errorf("wal_append_ns count = %d, want %d", snap.Count, appends)
	}

	// Crash one node and revive it: the store reopens and replays.
	if err := cluster.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := cluster.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	rec, ok := cluster.NodeRecovery(1)
	if !ok || rec.Outcome != "recovered" {
		t.Fatalf("node 1 recovery = %+v, %v; want recovered", rec, ok)
	}
	if got := reg.CounterValue("wal_replays_total"); got != 1 {
		t.Errorf("wal_replays_total = %d, want 1", got)
	}
	if got := reg.CounterValue("wal_replay_entries_total"); got == 0 {
		t.Error("replay accounted no journal entries")
	}
	// The revived node keeps serving reads.
	if _, err := store.Get(ctx, 100); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestObservabilitySelfHealingMetricInvariants runs a full failure →
// repair cycle and checks the control-loop counters: the supervisor's
// phase counters sum to the journal accounting, the detector's
// transition counters saw the node go down and come back, and the
// guardian's syncs are counted.
func TestObservabilitySelfHealingMetricInvariants(t *testing.T) {
	const seed = 7
	cluster := NewMemoryCluster(4,
		WithObservability(),
		WithRetry(chaosRetryPolicy()),
		WithRetrySeed(seed),
		WithSelfHealing(SelfHealingConfig{
			Parity:        1,
			ProbeInterval: 2 * time.Millisecond,
			Debounce:      2 * time.Millisecond,
			RepairBackoff: 2 * time.Millisecond,
		}),
	)
	defer cluster.Close()
	reg := cluster.Metrics()

	store, err := Open(cluster, KeyFromPassphrase("obs-heal"), Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	observeCorpus(t, store, 30)
	if err := cluster.SelfHealing().Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("guardian_syncs_total"); got != 1 {
		t.Errorf("guardian_syncs_total = %d, want 1", got)
	}

	if err := cluster.KillNode(2); err != nil {
		t.Fatal(err)
	}
	// Detection is asynchronous: wait until the repair has actually
	// completed and the cluster reports healthy again.
	deadline := time.After(10 * time.Second)
	for cluster.SelfHealing().Repairs() < 1 {
		select {
		case <-deadline:
			t.Fatalf("node never repaired; health=%+v", cluster.ClusterHealth())
		case <-time.After(2 * time.Millisecond):
		}
	}
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cluster.SelfHealing().AwaitHealthy(waitCtx); err != nil {
		t.Fatal(err)
	}

	// Detector saw the failure and the recovery.
	if got := reg.CounterValue("detector_transitions_down_total"); got == 0 {
		t.Error("no down transitions counted")
	}
	if got := reg.CounterValue("detector_transitions_up_total"); got == 0 {
		t.Error("no up transitions counted")
	}
	if got := reg.GaugeValue("detector_down_nodes"); got != 0 {
		t.Errorf("detector_down_nodes = %d after AwaitHealthy, want 0", got)
	}

	// The guardian restored the node and the supervisor journaled the
	// repair; phase counters must account for every journal record.
	if got := reg.CounterValue("guardian_recovers_total"); got != 1 {
		t.Errorf("guardian_recovers_total = %d, want 1", got)
	}
	health := cluster.ClusterHealth()
	var phaseSum uint64
	for p := 0; p <= int(sdds.RepairParityFallback); p++ {
		name := "supervisor_phase_" + strings.ReplaceAll(sdds.RepairPhase(p).String(), "-", "_") + "_total"
		phaseSum += reg.CounterValue(name)
	}
	if phaseSum != uint64(health.JournalLen)+health.JournalDropped {
		t.Errorf("sum(phase counters) = %d, want journal len %d + dropped %d",
			phaseSum, health.JournalLen, health.JournalDropped)
	}
	if got := reg.CounterValue("supervisor_phase_completed_total"); got == 0 {
		t.Error("no completed repairs counted")
	}

	// The /metrics exposition carries every layer's names.
	text := reg.WriteString()
	for _, name := range []string{
		"transport_retry_attempts_total",
		"detector_probes_total",
		"node_ops_total",
		"cluster_puts_total",
		"guardian_syncs_total",
		"supervisor_phase_completed_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics exposition missing %q", name)
		}
	}
}

// TestMetricsNilWithoutObservability pins the default: no registry, no
// overhead, and the accessor reports it honestly.
func TestMetricsNilWithoutObservability(t *testing.T) {
	cluster := NewMemoryCluster(2)
	defer cluster.Close()
	if cluster.Metrics() != nil {
		t.Fatal("Metrics() non-nil without WithObservability")
	}
	store, err := Open(cluster, KeyFromPassphrase("plain"), Config{ChunkSize: 4, Chunkings: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := store.Insert(ctx, 1, []byte("UNINSTRUMENTED PATH")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Search(ctx, []byte("UNINSTRUMENTED"), SearchFast); err != nil {
		t.Fatal(err)
	}
}
