package esdds

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/sdds"
)

func durableConfig() Config {
	return Config{ChunkSize: 4, Chunkings: 2, MaxBucketLoad: 4, WordSearch: true}
}

func sortedRIDs(rids []uint64) []uint64 {
	out := append([]uint64(nil), rids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameRIDs(a, b []uint64) bool {
	a, b = sortedRIDs(a), sortedRIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// searchAllModes runs the same query under every search mode.
func searchAllModes(t *testing.T, ctx context.Context, st *Store, query []byte) map[SearchMode][]uint64 {
	t.Helper()
	out := make(map[SearchMode][]uint64)
	for _, mode := range []SearchMode{SearchFast, SearchVerified, SearchExact} {
		rids, err := st.Search(ctx, query, mode)
		if err != nil {
			t.Fatalf("search mode %v: %v", mode, err)
		}
		out[mode] = sortedRIDs(rids)
	}
	return out
}

// TestClusterRestartRecoversState is the whole-cluster half of the
// durability story: every record inserted into a WithDataDir cluster
// must come back — by Get, by substring search in every mode, and by
// word search — after the cluster is closed and reopened over the same
// directory, with every node reporting a local "recovered" outcome.
// A third reopen with WithLinearScan then checks the satellite
// equivalence: the posting index rebuilt from durable replay must
// answer exactly like the linear-scan reference (and like the fresh
// in-memory insert baseline).
func TestClusterRestartRecoversState(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	key := KeyFromPassphrase("durability")
	query := []byte("durable payload")

	contents := make(map[uint64][]byte)
	for i := 1; i <= 12; i++ {
		contents[uint64(i)] = []byte(fmt.Sprintf("durable payload record %02d", i))
	}

	c1 := NewMemoryCluster(3, WithDataDir(dir))
	st1, err := Open(c1, key, durableConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for rid, content := range contents {
		if err := st1.Insert(ctx, rid, content); err != nil {
			t.Fatalf("insert %d: %v", rid, err)
		}
	}
	for i := 0; i < 3; i++ {
		rec, ok := c1.NodeRecovery(i)
		if !ok || rec.Outcome != "fresh" {
			t.Fatalf("node %d recovery on first start = %+v, %v; want fresh", i, rec, ok)
		}
	}
	baseline := searchAllModes(t, ctx, st1, query)
	if len(baseline[SearchVerified]) != len(contents) {
		t.Fatalf("baseline verified search found %d of %d records", len(baseline[SearchVerified]), len(contents))
	}
	baselineWords, err := st1.SearchWord(ctx, []byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("closing first cluster: %v", err)
	}

	// Reopen over the same directory: state must come back from local
	// checkpoints+journals alone (no parity, no re-insert).
	c2 := NewMemoryCluster(3, WithDataDir(dir))
	defer c2.Close()
	for i := 0; i < 3; i++ {
		rec, ok := c2.NodeRecovery(i)
		if !ok || rec.Outcome != "recovered" {
			t.Fatalf("node %d recovery on restart = %+v, %v; want recovered", i, rec, ok)
		}
	}
	st2, err := Open(c2, key, durableConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for rid, want := range contents {
		got, err := st2.Get(ctx, rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) after restart = %q, %v; want %q", rid, got, err, want)
		}
	}
	replayed := searchAllModes(t, ctx, st2, query)
	for mode, want := range baseline {
		if !sameRIDs(replayed[mode], want) {
			t.Fatalf("mode %v after restart: %v, want %v", mode, replayed[mode], want)
		}
	}
	words, err := st2.SearchWord(ctx, []byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameRIDs(words, baselineWords) {
		t.Fatalf("word search after restart: %v, want %v", words, baselineWords)
	}

	// Posting-index equivalence: the index rebuilt during replay must be
	// indistinguishable from the linear-scan reference over the same
	// durable state.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3 := NewMemoryCluster(3, WithDataDir(dir), WithLinearScan())
	defer c3.Close()
	st3, err := Open(c3, key, durableConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	linear := searchAllModes(t, ctx, st3, query)
	for mode, want := range baseline {
		if !sameRIDs(linear[mode], want) {
			t.Fatalf("mode %v linear-scan after restart: %v, want %v", mode, linear[mode], want)
		}
	}
}

// victimNode picks the node whose journal has the most durable state —
// the interesting one to kill.
func victimNode(t *testing.T, dir string, n int) int {
	t.Helper()
	best, bestSize := -1, int64(0)
	for i := 0; i < n; i++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("node-%d", i), "wal.log"))
		if err != nil {
			continue
		}
		if fi.Size() > bestSize {
			best, bestSize = i, fi.Size()
		}
	}
	if best < 0 || bestSize < 64 {
		t.Fatalf("no node accumulated a meaningful journal (best %d, %d bytes)", best, bestSize)
	}
	return best
}

func phasesFor(journal []RepairRecord, node int) []sdds.RepairPhase {
	var out []sdds.RepairPhase
	for _, r := range journal {
		if int(r.Node) == node {
			out = append(out, r.Phase)
		}
	}
	return out
}

func awaitPhase(t *testing.T, heal *SelfHealing, node int, want sdds.RepairPhase) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, p := range phasesFor(heal.Journal(), node) {
			if p == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never reached repair phase %v; journal: %v",
				node, want, heal.Journal())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSelfHealingPrefersLocalRecovery kills a durable node AFTER writes
// that were never folded into the parity group. The supervisor must let
// the revived node replay its own journal (RepairLocalRecovery) instead
// of rolling it back to the recovery point with Guardian.Recover — the
// post-sync records surviving is the proof, and the parity budget stays
// untouched for real losses.
func TestSelfHealingPrefersLocalRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c := NewMemoryCluster(4, WithDataDir(dir), WithSelfHealing(fastSelfHealing(1)))
	defer c.Close()
	st, err := Open(c, KeyFromPassphrase("durability"), durableConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	heal := c.SelfHealing()

	contents := make(map[uint64][]byte)
	insert := func(lo, hi int, tag string) {
		for i := lo; i <= hi; i++ {
			content := []byte(fmt.Sprintf("durable payload %s %02d", tag, i))
			contents[uint64(i)] = content
			if err := st.Insert(ctx, uint64(i), content); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
	}
	insert(1, 12, "synced")
	if err := heal.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	insert(13, 20, "beyond-sync") // the recovery point does NOT have these

	victim := victimNode(t, dir, 4)
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	awaitPhase(t, heal, victim, sdds.RepairLocalRecovery)
	hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := heal.AwaitHealthy(hctx); err != nil {
		t.Fatalf("AwaitHealthy after local recovery: %v", err)
	}
	for _, p := range phasesFor(heal.Journal(), victim) {
		if p == sdds.RepairParityFallback || p == sdds.RepairCompleted {
			t.Fatalf("node %d consumed a parity restore (%v) despite a replayable journal", victim, p)
		}
	}

	// Every record — including the ones past the recovery point — must
	// have survived the crash, which only local replay can deliver.
	for rid, want := range contents {
		got, err := st.Get(ctx, rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) after local recovery = %q, %v; want %q", rid, got, err, want)
		}
	}
	rids, err := st.Search(ctx, []byte("durable payload"), SearchVerified)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != len(contents) {
		t.Fatalf("search after local recovery found %d of %d records", len(rids), len(contents))
	}

	health := c.ClusterHealth()
	if d := health.Nodes[victim].Durability; d != "recovered" {
		t.Fatalf("node %d durability = %q, want recovered", victim, d)
	}
	if health.JournalCap == 0 || health.JournalLen == 0 {
		t.Fatalf("health journal accounting missing: len=%d cap=%d", health.JournalLen, health.JournalCap)
	}
}

// TestSelfHealingParityFallbackOnCorruptJournal flips one bit in a live
// node's on-disk journal and then kills the node. The revived node must
// detect the corruption (never silently replay past it), report it, and
// the supervisor must fall back to a parity restore — corruption is
// loud, and the data still comes back.
func TestSelfHealingParityFallbackOnCorruptJournal(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c := NewMemoryCluster(4, WithDataDir(dir), WithSelfHealing(fastSelfHealing(1)))
	defer c.Close()
	st, err := Open(c, KeyFromPassphrase("durability"), durableConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	heal := c.SelfHealing()

	contents := make(map[uint64][]byte)
	for i := 1; i <= 16; i++ {
		content := []byte(fmt.Sprintf("durable payload record %02d", i))
		contents[uint64(i)] = content
		if err := st.Insert(ctx, uint64(i), content); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := heal.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	victim := victimNode(t, dir, 4)
	// Flip one bit inside the first frame's checksum field (byte 13:
	// past the 8-byte magic, inside the CRC at offset 12..15): a
	// complete frame that no longer verifies — corruption, not a torn
	// tail.
	walPath := filepath.Join(dir, fmt.Sprintf("node-%d", victim), "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	one := [1]byte{raw[13] ^ 0x20}
	if _, err := f.WriteAt(one[:], 13); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	awaitPhase(t, heal, victim, sdds.RepairParityFallback)
	awaitPhase(t, heal, victim, sdds.RepairCompleted)
	hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := heal.AwaitHealthy(hctx); err != nil {
		t.Fatalf("AwaitHealthy after parity fallback: %v", err)
	}

	// The corruption was detected and reported, never silently replayed.
	rec, ok := c.NodeRecovery(victim)
	if !ok || rec.Outcome != "corrupt" || rec.Err == "" {
		t.Fatalf("node %d recovery = %+v, %v; want a reported corrupt outcome", victim, rec, ok)
	}

	// ... and parity made the node whole anyway.
	for rid, want := range contents {
		got, err := st.Get(ctx, rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) after parity fallback = %q, %v; want %q", rid, got, err, want)
		}
	}
	rids, err := st.Search(ctx, []byte("durable payload"), SearchVerified)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != len(contents) {
		t.Fatalf("search after parity fallback found %d of %d records", len(rids), len(contents))
	}
}
