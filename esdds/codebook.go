package esdds

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/encode"
)

// Codebook persistence. Stage-2 codebooks are trained on a corpus sample
// and must be bit-identical across every client of a store — otherwise
// one client's index pieces won't match another client's queries. Open
// trains a fresh codebook when given a corpus; these helpers let the
// first client persist the trained codebook and later clients load it
// instead of retraining.

// WriteCodebook serializes the store's Stage-2 codebook. It fails when
// the store was opened without Stage-2 encoding.
func (s *Store) WriteCodebook(w io.Writer) error {
	cb := s.codebook()
	if cb == nil {
		return errors.New("esdds: store has no Stage-2 codebook")
	}
	_, err := cb.WriteTo(w)
	return err
}

func (s *Store) codebook() *encode.Codebook {
	p := s.pipeline.Params()
	if p.SymbolCodebook != nil {
		return p.SymbolCodebook
	}
	return p.ChunkCodebook
}

// OpenWithCodebook is Open for follow-up clients: instead of a training
// corpus it takes a codebook previously saved with WriteCodebook. The
// Config must request the same kind of encoding (SymbolCodes or
// ChunkCodes) the codebook was trained for; counts and group sizes are
// cross-checked.
func OpenWithCodebook(cluster *Cluster, key Key, cfg Config, codebook io.Reader) (*Store, error) {
	cb, err := encode.ReadCodebook(codebook)
	if err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	switch {
	case cfg.SymbolCodes > 0:
		if cb.GroupSize() != 1 {
			return nil, fmt.Errorf("esdds: codebook group size %d, want 1 for SymbolCodes", cb.GroupSize())
		}
		if cb.N() != cfg.SymbolCodes {
			return nil, fmt.Errorf("esdds: codebook has %d codes, config wants %d", cb.N(), cfg.SymbolCodes)
		}
	case cfg.ChunkCodes > 0:
		if cb.GroupSize() != cfg.ChunkSize {
			return nil, fmt.Errorf("esdds: codebook group size %d, want ChunkSize %d", cb.GroupSize(), cfg.ChunkSize)
		}
		if cb.N() != cfg.ChunkCodes {
			return nil, fmt.Errorf("esdds: codebook has %d codes, config wants %d", cb.N(), cfg.ChunkCodes)
		}
	default:
		return nil, errors.New("esdds: config requests no Stage-2 encoding; use Open")
	}
	return openInternal(cluster, key, cfg, cb)
}

// SearchShort implements the paper's §2.3 workaround for queries one
// symbol shorter than the chunk size: the query is expanded with every
// alphabet symbol and the union of the results returned. The paper notes
// this is "wasteful and might pose a security risk if an attacker snoops
// network traffic" — it issues |alphabet| searches whose union
// over-approximates the true result set. alphabet defaults to the
// printable upper-case set used by the directory corpus when nil.
func (s *Store) SearchShort(ctx context.Context, substring []byte, alphabet []byte) ([]uint64, error) {
	if len(alphabet) == 0 {
		alphabet = []byte(" &'-ABCDEFGHIJKLMNOPQRSTUVWXYZ")
	}
	want := s.MinQueryLen() - 1
	if len(substring) != want {
		return nil, fmt.Errorf("esdds: SearchShort needs exactly %d symbols (MinQueryLen-1), got %d",
			want, len(substring))
	}
	union := make(map[uint64]bool)
	q := make([]byte, len(substring)+1)
	copy(q, substring)
	for _, c := range alphabet {
		q[len(substring)] = c
		rids, err := s.Search(ctx, q, SearchFast)
		if err != nil {
			return nil, err
		}
		for _, r := range rids {
			union[r] = true
		}
	}
	// A record may also end with the short query as its suffix (no
	// following symbol). Those occurrences sit against the zero-padded
	// tail, so probe with the padding symbol too.
	q[len(substring)] = 0
	rids, err := s.Search(ctx, q, SearchFast)
	if err == nil {
		for _, r := range rids {
			union[r] = true
		}
	}
	out := make([]uint64, 0, len(union))
	for r := range union {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
