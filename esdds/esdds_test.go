package esdds

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/phonebook"
)

func openMem(t *testing.T, cfg Config, corpus [][]byte) *Store {
	t.Helper()
	cluster := NewMemoryCluster(4)
	t.Cleanup(func() { cluster.Close() })
	store, err := Open(cluster, KeyFromPassphrase("test"), cfg, corpus)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestOpenValidation(t *testing.T) {
	cluster := NewMemoryCluster(2)
	defer cluster.Close()
	key := KeyFromPassphrase("k")
	cases := []Config{
		{ChunkSize: 0},
		{ChunkSize: 4, Chunkings: 3},
		{ChunkSize: 2, SymbolCodes: 8, ChunkCodes: 8},
		{ChunkSize: 2, DispersionSites: 3}, // 16 bits, K=3 does not divide
		{ChunkSize: 4, Matrix: MatrixKind(77)},
	}
	for i, cfg := range cases {
		if _, err := Open(cluster, key, cfg, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Stage-2 without corpus.
	if _, err := Open(cluster, key, Config{ChunkSize: 2, SymbolCodes: 8}, nil); !errors.Is(err, ErrNeedTrainingCorpus) {
		t.Errorf("err = %v, want ErrNeedTrainingCorpus", err)
	}
	if _, err := Open(cluster, key, Config{ChunkSize: 2, ChunkCodes: 8}, nil); !errors.Is(err, ErrNeedTrainingCorpus) {
		t.Errorf("err = %v, want ErrNeedTrainingCorpus", err)
	}
}

func TestInsertGetDelete(t *testing.T) {
	store := openMem(t, Config{ChunkSize: 4, Chunkings: 2}, nil)
	ctx := context.Background()
	content := []byte("SCHWARZ THOMAS J")
	if err := store.Insert(ctx, 7, content); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("Get = %q", got)
	}
	if _, err := store.Get(ctx, 8); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing record: err = %v", err)
	}
	if err := store.Delete(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(ctx, 7); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted record still readable: %v", err)
	}
	if err := store.Delete(ctx, 7); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: err = %v", err)
	}
}

func TestSearchEndToEnd(t *testing.T) {
	store := openMem(t, Config{ChunkSize: 4, Chunkings: 4, DispersionSites: 4}, nil)
	ctx := context.Background()
	names := map[uint64]string{
		1: "SCHWARZ THOMAS",
		2: "TSUI PETER",
		3: "LITWIN WITOLD",
		4: "SCHWARTZ ANNA",
		5: "MARTINEZ MARIA",
	}
	for rid, name := range names {
		if err := store.Insert(ctx, rid, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	for _, mode := range []SearchMode{SearchFast, SearchVerified, SearchExact} {
		rids, err := store.Search(ctx, []byte("SCHWARZ"), mode)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		found := false
		for _, r := range rids {
			if r == 1 {
				found = true
			}
			if r == 2 || r == 3 || r == 5 {
				t.Errorf("mode %v: spurious hit %d", mode, r)
			}
		}
		if !found {
			t.Errorf("mode %v: SCHWARZ not found: %v", mode, rids)
		}
	}
	// SearchRecords returns decrypted contents.
	recs, err := store.SearchRecords(ctx, []byte("MARTINEZ"), SearchExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].RID != 5 || string(recs[0].Content) != "MARTINEZ MARIA" {
		t.Errorf("SearchRecords = %+v", recs)
	}
}

func TestSearchModesMinLengths(t *testing.T) {
	store := openMem(t, Config{ChunkSize: 8, Chunkings: 4}, nil)
	if store.MinQueryLen() != 9 {
		t.Errorf("MinQueryLen = %d, want 9", store.MinQueryLen())
	}
	if store.MinQueryLenFor(SearchFast) != 9 {
		t.Error("MinQueryLenFor(fast)")
	}
	if store.MinQueryLenFor(SearchExact) != 15 {
		t.Errorf("MinQueryLenFor(exact) = %d, want 15", store.MinQueryLenFor(SearchExact))
	}
	ctx := context.Background()
	store.Insert(ctx, 1, []byte("ABCDEFGHIJKLMNOP"))
	if _, err := store.Search(ctx, []byte("ABCDEFGH"), SearchFast); err == nil {
		t.Error("too-short query accepted")
	}
}

func TestStage2SymbolEncodingStore(t *testing.T) {
	entries := phonebook.Generate(300, 1)
	corpus := phonebook.Names(entries)
	store := openMem(t, Config{ChunkSize: 2, Chunkings: 2, SymbolCodes: 16}, corpus)
	ctx := context.Background()
	for i, e := range entries[:100] {
		if err := store.Insert(ctx, uint64(i), []byte(e.Name)); err != nil {
			t.Fatal(err)
		}
	}
	// Every indexed record must be findable by its own surname (length
	// permitting): the Stage-2 encoding is lossy but deterministic, so
	// there are no false negatives.
	misses := 0
	for i, e := range entries[:100] {
		last := e.LastName()
		if len(last) < store.MinQueryLen() {
			continue
		}
		rids, err := store.Search(ctx, []byte(last), SearchFast)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range rids {
			if r == uint64(i) {
				found = true
			}
		}
		if !found {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d false negatives under symbol encoding", misses)
	}
}

func TestSearchRecordsFilteredRemovesFalsePositives(t *testing.T) {
	entries := phonebook.Generate(400, 2)
	corpus := phonebook.Names(entries)
	// Aggressive compression (8 codes) to force plenty of collisions.
	store := openMem(t, Config{ChunkSize: 2, Chunkings: 2, SymbolCodes: 8}, corpus)
	ctx := context.Background()
	for i, e := range entries {
		if err := store.Insert(ctx, uint64(i), []byte(e.Name)); err != nil {
			t.Fatal(err)
		}
	}
	query := []byte("MARTINEZ")
	raw, err := store.SearchRecords(ctx, query, SearchFast)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := store.SearchRecordsFiltered(ctx, query, SearchFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) > len(raw) {
		t.Error("filtering added records")
	}
	for _, r := range filtered {
		if !bytes.Contains(r.Content, query) {
			t.Errorf("filtered result %q does not contain query", r.Content)
		}
	}
	// Every true occurrence must survive the filter.
	for i, e := range entries {
		if bytes.Contains([]byte(e.Name), query) {
			found := false
			for _, r := range filtered {
				if r.RID == uint64(i) {
					found = true
				}
			}
			if !found {
				t.Errorf("true occurrence %q (rid %d) filtered away", e.Name, i)
			}
		}
	}
}

func TestWrongKeyCannotRead(t *testing.T) {
	cluster := NewMemoryCluster(2)
	defer cluster.Close()
	ctx := context.Background()
	cfg := Config{ChunkSize: 4, Chunkings: 2}
	a, err := Open(cluster, KeyFromPassphrase("alice"), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(ctx, 1, []byte("TOP SECRET CONTENT")); err != nil {
		t.Fatal(err)
	}
	b, err := Open(cluster, KeyFromPassphrase("mallory"), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(ctx, 1); err == nil {
		t.Error("wrong key decrypted a record")
	}
	// And the wrong key's queries do not match the index.
	rids, err := b.Search(ctx, []byte("SECRET CON"), SearchFast)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rids {
		if r == 1 {
			t.Error("wrong key's query matched the index")
		}
	}
}

func TestStatsAndGrowth(t *testing.T) {
	store := openMem(t, Config{ChunkSize: 4, Chunkings: 2, MaxBucketLoad: 4}, nil)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		content := []byte("RECORD CONTENT NUMBER PADDING DATA")
		if err := store.Insert(ctx, uint64(i), content); err != nil {
			t.Fatal(err)
		}
	}
	st := store.Stats()
	if st.RecordBuckets < 8 || st.IndexBuckets < 8 {
		t.Errorf("files did not grow: %+v", st)
	}
	if st.RecordSplits == 0 || st.IndexSplits == 0 {
		t.Errorf("no splits recorded: %+v", st)
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	cluster, err := StartLocalTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Nodes() != 3 {
		t.Errorf("Nodes = %d", cluster.Nodes())
	}
	store, err := Open(cluster, KeyFromPassphrase("tcp"), Config{ChunkSize: 4, Chunkings: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, name := range []string{"SCHWARZ THOMAS", "LITWIN WITOLD", "TSUI PETER"} {
		if err := store.Insert(ctx, uint64(i), []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := store.SearchRecordsFiltered(ctx, []byte("LITWIN"), SearchFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Content) != "LITWIN WITOLD" {
		t.Errorf("recs = %+v", recs)
	}
}

func TestDialClusterValidation(t *testing.T) {
	if _, err := DialCluster(nil); err == nil {
		t.Error("empty map accepted")
	}
	if _, err := DialCluster(map[int]string{1: "x"}); err == nil {
		t.Error("sparse IDs accepted")
	}
}

func TestSearchModeString(t *testing.T) {
	if SearchFast.String() != "fast" || SearchVerified.String() != "verified" ||
		SearchExact.String() != "exact" || SearchMode(9).String() != "unknown" {
		t.Error("SearchMode.String wrong")
	}
}

func TestWordSearch(t *testing.T) {
	store := openMem(t, Config{ChunkSize: 4, Chunkings: 2, WordSearch: true}, nil)
	ctx := context.Background()
	names := map[uint64]string{
		1: "SCHWARZ THOMAS",
		2: "SCHWARZSON THOMASINA", // contains SCHWARZ as substring, not word
		3: "LITWIN WITOLD",
		4: "THOMAS ANDERSON",
	}
	for rid, n := range names {
		if err := store.Insert(ctx, rid, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Whole-word semantics: SCHWARZ matches record 1 only.
	rids, err := store.SearchWord(ctx, []byte("SCHWARZ"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 || rids[0] != 1 {
		t.Errorf("SearchWord(SCHWARZ) = %v, want [1]", rids)
	}
	// THOMAS matches 1 and 4 but not THOMASINA's record.
	rids, err = store.SearchWord(ctx, []byte("THOMAS"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 2 || rids[0] != 1 || rids[1] != 4 {
		t.Errorf("SearchWord(THOMAS) = %v, want [1 4]", rids)
	}
	// Case-insensitive under the default tokenizer.
	rids, err = store.SearchWord(ctx, []byte("witold"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 || rids[0] != 3 {
		t.Errorf("SearchWord(witold) = %v, want [3]", rids)
	}
	// Short words work (no chunk-size minimum).
	if err := store.Insert(ctx, 5, []byte("YU LI")); err != nil {
		t.Fatal(err)
	}
	rids, err = store.SearchWord(ctx, []byte("YU"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 || rids[0] != 5 {
		t.Errorf("SearchWord(YU) = %v, want [5]", rids)
	}
	// SearchWordRecords decrypts.
	recs, err := store.SearchWordRecords(ctx, []byte("LITWIN"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Content) != "LITWIN WITOLD" {
		t.Errorf("SearchWordRecords = %+v", recs)
	}
	// Delete removes word entries too.
	if err := store.Delete(ctx, 1); err != nil {
		t.Fatal(err)
	}
	rids, err = store.SearchWord(ctx, []byte("SCHWARZ"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 0 {
		t.Errorf("deleted record still word-matches: %v", rids)
	}
	// Replace updates the blob.
	if err := store.Insert(ctx, 3, []byte("RENAMED PERSON")); err != nil {
		t.Fatal(err)
	}
	rids, _ = store.SearchWord(ctx, []byte("LITWIN"))
	if len(rids) != 0 {
		t.Errorf("replaced record still word-matches: %v", rids)
	}
}

func TestWordSearchDisabled(t *testing.T) {
	store := openMem(t, Config{ChunkSize: 4, Chunkings: 2}, nil)
	if _, err := store.SearchWord(context.Background(), []byte("X")); !errors.Is(err, ErrWordSearchDisabled) {
		t.Errorf("err = %v, want ErrWordSearchDisabled", err)
	}
}

func TestSearchBestEffortHealthy(t *testing.T) {
	store := openMem(t, Config{ChunkSize: 4, Chunkings: 2}, nil)
	ctx := context.Background()
	if err := store.Insert(ctx, 9, []byte("MARTINEZ MARIA")); err != nil {
		t.Fatal(err)
	}
	rids, failed, err := store.SearchBestEffort(ctx, []byte("MARTINEZ"), SearchFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Errorf("failed nodes on healthy cluster: %v", failed)
	}
	if len(rids) != 1 || rids[0] != 9 {
		t.Errorf("rids = %v", rids)
	}
}
