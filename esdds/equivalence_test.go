package esdds

import (
	"context"
	"math/rand"
	"sort"
	"testing"
)

// TestPostingIndexEquivalence is the end-to-end differential test of
// the node-side posting index: a posting-indexed cluster and a
// linear-scan cluster (WithLinearScan) run the same randomized
// workload — inserts forcing splits, deletes forcing merges, a node
// crash recovered from parity — and must answer every query
// identically in every search mode at every stage.
func TestPostingIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20060410))
	ctx := context.Background()
	cfg := Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 6, // small buckets: plenty of splits and merges
	}

	posting := NewMemoryCluster(4)
	defer posting.Close()
	linear := NewMemoryCluster(4, WithLinearScan())
	defer linear.Close()

	ps, err := Open(posting, KeyFromPassphrase("equiv"), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Open(linear, KeyFromPassphrase("equiv"), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ "
	randomContent := func() []byte {
		n := 10 + rng.Intn(30)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return b
	}

	contents := map[uint64][]byte{}
	for rid := uint64(1); rid <= 90; rid++ {
		c := randomContent()
		contents[rid] = c
		if err := ps.Insert(ctx, rid, c); err != nil {
			t.Fatal(err)
		}
		if err := ls.Insert(ctx, rid, c); err != nil {
			t.Fatal(err)
		}
	}

	queries := func() [][]byte {
		qs := [][]byte{[]byte("QQQQQQQQ")} // near-certain miss
		var rids []uint64
		for rid := range contents {
			rids = append(rids, rid)
		}
		sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
		for _, rid := range rids {
			c := contents[rid]
			if len(qs) >= 10 || len(c) < 9 {
				continue
			}
			off := rng.Intn(len(c) - 8)
			qs = append(qs, c[off:off+8])
		}
		return qs
	}

	compare := func(stage string) {
		t.Helper()
		for _, q := range queries() {
			for _, mode := range []SearchMode{SearchFast, SearchVerified, SearchExact} {
				got, err := ps.Search(ctx, q, mode)
				if err != nil {
					t.Fatalf("%s: posting search %q/%v: %v", stage, q, mode, err)
				}
				want, err := ls.Search(ctx, q, mode)
				if err != nil {
					t.Fatalf("%s: linear search %q/%v: %v", stage, q, mode, err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) != len(want) {
					t.Fatalf("%s: query %q mode %v: posting %v, linear %v", stage, q, mode, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: query %q mode %v: posting %v, linear %v", stage, q, mode, got, want)
					}
				}
			}
		}
	}

	compare("after inserts")

	// Delete most of the corpus — enough to shrink the file — and
	// confirm the index tracked record removal and bucket merges.
	var rids []uint64
	for rid := range contents {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	for _, rid := range rids[:70] {
		if err := ps.Delete(ctx, rid); err != nil {
			t.Fatal(err)
		}
		if err := ls.Delete(ctx, rid); err != nil {
			t.Fatal(err)
		}
		delete(contents, rid)
	}
	compare("after deletes")

	// Crash-and-recover both clusters: parity-rebuilt node images must
	// rebuild their posting indexes (and the linear cluster must stay
	// linear through revival).
	for _, cl := range []*Cluster{posting, linear} {
		guard, err := cl.Guardian(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := guard.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if err := cl.KillNode(1); err != nil {
			t.Fatal(err)
		}
		if err := cl.ReviveNode(1); err != nil {
			t.Fatal(err)
		}
		if err := guard.Recover(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	compare("after crash recovery")
}
