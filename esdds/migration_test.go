package esdds

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/sdds"
)

func checkMigrationInvariant(t *testing.T, m sdds.MigrationStats) {
	t.Helper()
	if m.Started != m.Committed+m.Aborted+uint64(m.InFlight) {
		t.Fatalf("migration ledger invariant broken: %+v (started != committed+aborted+in_flight)", m)
	}
}

// TestMigrationLedgerSurvivesClusterReopen grows a durable cluster
// through several splits, then reopens it over the same directory:
// the coordinator's migration ledger (and the LH* state folded from
// it) must come back from migrations.log, and every record must stay
// reachable.
func TestMigrationLedgerSurvivesClusterReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	key := KeyFromPassphrase("migration")

	contents := make(map[uint64][]byte)
	for i := 1; i <= 40; i++ {
		contents[uint64(i)] = []byte(fmt.Sprintf("migration ledger record %02d", i))
	}

	c1 := NewMemoryCluster(2, WithDataDir(dir))
	st1, err := Open(c1, key, durableConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for rid, content := range contents {
		if err := st1.Insert(ctx, rid, content); err != nil {
			t.Fatalf("insert %d: %v", rid, err)
		}
	}
	before := c1.MigrationStats()
	if before.Started == 0 {
		t.Fatal("growth drove no migrations; the load was too small to split")
	}
	if before.InFlight != 0 {
		t.Fatalf("migrations left in flight after clean growth: %+v", before)
	}
	checkMigrationInvariant(t, before)
	if got := c1.ClusterHealth().Migrations; got != before {
		t.Fatalf("ClusterHealth().Migrations = %+v, want %+v", got, before)
	}
	recState := c1.inner.State(sdds.FileRecords)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := NewMemoryCluster(2, WithDataDir(dir))
	defer c2.Close()
	after := c2.MigrationStats()
	if after.Started != before.Started || after.Committed != before.Committed || after.Aborted != before.Aborted {
		t.Fatalf("ledger not durable across reopen: before %+v, after %+v", before, after)
	}
	if after.InFlight != 0 {
		t.Fatalf("reopen manufactured in-flight migrations: %+v", after)
	}
	checkMigrationInvariant(t, after)
	// The coordinator refolds its LH* state from the committed intents
	// instead of restarting from a single bucket.
	if got := c2.inner.State(sdds.FileRecords); got != recState {
		t.Fatalf("coordinator state after reopen = %+v, want %+v (folded from ledger)", got, recState)
	}
	st2, err := Open(c2, key, durableConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for rid, want := range contents {
		got, err := st2.Get(ctx, rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) after reopen = %q, %v; want %q", rid, got, err, want)
		}
	}
}

// TestMigrationInterruptedByNodeLossResumes kills the split target
// before the overflow that triggers growth: the put surfaces the
// split failure, the migration stays journalled in-flight with the
// source bucket frozen but readable, and an explicit ResumeMigrations
// after the node returns rolls the handoff forward with zero loss.
func TestMigrationInterruptedByNodeLossResumes(t *testing.T) {
	ctx := context.Background()
	c := NewMemoryCluster(2)
	defer c.Close()
	c.inner.SetMaxLoad(sdds.FileRecords, 4)
	val := func(i int) []byte { return []byte(fmt.Sprintf("mig-record-%02d", i)) }
	for i := 0; i < 4; i++ {
		if err := c.inner.Put(ctx, sdds.FileRecords, uint64(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	// The fifth put overflows the file; the absorb cannot reach the
	// dead target, so the put reports the split failure while the
	// record itself is already stored on the source.
	if err := c.inner.Put(ctx, sdds.FileRecords, 4, val(4)); err == nil {
		t.Fatal("split toward a dead node reported success")
	}
	mid := c.MigrationStats()
	if mid.Started != 1 || mid.InFlight != 1 {
		t.Fatalf("after interrupted split: %+v, want 1 started / 1 in flight", mid)
	}
	checkMigrationInvariant(t, mid)
	// The frozen source keeps serving reads for the whole moved set.
	for i := 0; i < 5; i++ {
		got, ok, err := c.inner.Get(ctx, sdds.FileRecords, uint64(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("mid-flight Get(%d) = %q, %v, %v", i, got, ok, err)
		}
	}

	if err := c.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	if n, err := c.ResumeMigrations(ctx); err != nil || n != 1 {
		t.Fatalf("ResumeMigrations = %d, %v; want 1, nil", n, err)
	}
	done := c.MigrationStats()
	if done.InFlight != 0 || done.Committed != 1 || done.Resumed == 0 {
		t.Fatalf("after resume: %+v, want committed with zero in flight", done)
	}
	checkMigrationInvariant(t, done)
	if got := c.inner.State(sdds.FileRecords).Buckets(); got != 2 {
		t.Fatalf("resumed split left %d buckets, want 2", got)
	}
	for i := 0; i < 5; i++ {
		got, ok, err := c.inner.Get(ctx, sdds.FileRecords, uint64(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("post-resume Get(%d) = %q, %v, %v", i, got, ok, err)
		}
	}
}

// TestSelfHealingResumesInterruptedMigration is the no-operator
// version: with WithSelfHealing, the supervisor that revives the dead
// split target also rolls the journalled handoff forward as part of
// finishing the repair.
func TestSelfHealingResumesInterruptedMigration(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c := NewMemoryCluster(3, WithDataDir(dir), WithSelfHealing(fastSelfHealing(1)))
	defer c.Close()
	heal := c.SelfHealing()
	c.inner.SetMaxLoad(sdds.FileRecords, 4)
	val := func(i int) []byte { return []byte(fmt.Sprintf("heal-record-%02d", i)) }
	for i := 0; i < 4; i++ {
		if err := c.inner.Put(ctx, sdds.FileRecords, uint64(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := heal.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.inner.Put(ctx, sdds.FileRecords, 4, val(4)); err == nil {
		t.Fatal("split toward a dead node reported success")
	}
	if mid := c.MigrationStats(); mid.InFlight != 1 {
		t.Fatalf("after interrupted split: %+v, want 1 in flight", mid)
	}

	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := heal.AwaitHealthy(wctx); err != nil {
		t.Fatalf("cluster never healed: %v", err)
	}
	// The resume runs inside finishRepair, which may still be in
	// progress the instant AwaitHealthy returns; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for c.MigrationStats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never resumed the migration: %+v", c.MigrationStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	done := c.MigrationStats()
	if done.Committed != done.Started || done.Resumed == 0 {
		t.Fatalf("after self-heal: %+v, want everything committed via resume", done)
	}
	checkMigrationInvariant(t, done)
	for i := 0; i < 5; i++ {
		got, ok, err := c.inner.Get(ctx, sdds.FileRecords, uint64(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("post-heal Get(%d) = %q, %v, %v", i, got, ok, err)
		}
	}
}
