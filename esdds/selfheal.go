package esdds

import (
	"context"
	"time"

	"repro/internal/sdds"
	"repro/internal/transport"
)

// SelfHealingConfig tunes the availability loop enabled by
// WithSelfHealing: a failure detector probing every node, a repair
// supervisor that automatically restores failed nodes from LH*RS
// parity, and degraded-mode search serving down nodes' index buckets
// from the guardian's last-synced images.
type SelfHealingConfig struct {
	// Parity is k, the number of simultaneous node failures the cluster
	// survives with zero record loss. Required, >= 1.
	Parity int

	// Failure detector tuning (zero values take transport defaults).
	ProbeInterval time.Duration // active health-probe period (default 50ms)
	ProbeTimeout  time.Duration // per-probe deadline
	DownAfter     int           // consecutive failures before "down"
	UpAfter       int           // consecutive successes before "up"

	// Repair supervisor tuning (zero values take sdds defaults).
	Debounce      time.Duration // confirmed-down dwell before repair
	RepairBackoff time.Duration // pause between failed repair attempts
	SyncInterval  time.Duration // periodic recovery-point refresh (0: manual Sync only)
	JournalCap    int           // repair-journal ring bound (default 512)
}

// WithSelfHealing turns the cluster into a self-healing one: node
// images are kept under Reed–Solomon parity (tolerating cfg.Parity
// simultaneous failures), a detector probes node health, a supervisor
// automatically revives and restores confirmed-dead nodes, and
// searches transparently stay complete while at most Parity nodes are
// down by answering their share from the last-synced parity images.
//
// Call Store inserts as usual, then SelfHealing().Sync (or set
// SyncInterval) to establish the recovery point. Inspect progress with
// ClusterHealth, SelfHealing().Journal, and SelfHealing().Alarm.
func WithSelfHealing(cfg SelfHealingConfig) ClusterOption {
	return func(c *clusterConfig) { c.selfHeal = &cfg }
}

// RepairRecord is one entry of the supervisor's repair journal.
type RepairRecord = sdds.RepairRecord

// enableSelfHealing wires guardian + detector + supervisor over an
// already-built cluster and registers their shutdown ahead of the
// transport teardown.
func (c *Cluster) enableSelfHealing(sh SelfHealingConfig) error {
	guard, err := sdds.NewGuardian(c.inner.Transport(), c.inner.Placement(), sh.Parity)
	if err != nil {
		return err
	}
	probeTr := c.probeTr
	if probeTr == nil {
		probeTr = c.inner.Transport()
	}
	if sh.ProbeInterval == 0 {
		sh.ProbeInterval = 50 * time.Millisecond
	}
	det := transport.NewDetector(probeTr, c.inner.Placement().Nodes(), transport.DetectorPolicy{
		ProbeOp:       sdds.PingOp,
		ProbeInterval: sh.ProbeInterval,
		ProbeTimeout:  sh.ProbeTimeout,
		DownAfter:     sh.DownAfter,
		UpAfter:       sh.UpAfter,
	})
	if c.retry != nil {
		// Passive signals: every send the retry layer makes doubles as a
		// health observation, so failures surface faster than the probe
		// period.
		c.retry.SetObserver(det)
	}
	if c.tcp != nil {
		// Pool-level signals: a pooled connection dying (reset, timeout,
		// EOF mid-stream) is evidence about the node even when no Send is
		// in flight to fail, so the pool reports each connection death as
		// one failed-send observation instead of silently redialing.
		c.tcp.SetObserver(det)
	}
	var revive sdds.Reviver
	if c.mem != nil {
		revive = func(_ context.Context, node transport.NodeID) error {
			return c.ReviveNode(int(node))
		}
	}
	sup := sdds.NewSupervisor(det, guard, c.retry, revive, sdds.SupervisorConfig{
		Debounce:      sh.Debounce,
		RepairBackoff: sh.RepairBackoff,
		SyncInterval:  sh.SyncInterval,
		JournalCap:    sh.JournalCap,
	})
	det.Instrument(c.met)
	sup.Instrument(c.met)
	guard.Instrument(c.met)
	// A node failure mid-split/merge leaves the migration journalled
	// in-flight with its buckets frozen; finishing each repair, the
	// supervisor rolls those handoffs forward (or aborts them) so the
	// cluster returns to nominal without operator action.
	sup.SetMigrationResumer(c.inner.ResumeMigrations)
	c.inner.SetDegradedProvider(sup)
	det.Start()
	sup.Start()
	c.det, c.sup, c.guard = det, sup, guard
	// Stop the loops before the transports they probe are closed.
	c.close = append([]func() error{func() error {
		sup.Stop()
		det.Stop()
		return nil
	}}, c.close...)
	return nil
}

// SelfHealing is the handle to a self-healing cluster's availability
// loop.
type SelfHealing struct{ c *Cluster }

// SelfHealing returns the availability-loop handle, or nil unless the
// cluster was built with WithSelfHealing.
func (c *Cluster) SelfHealing() *SelfHealing {
	if c.sup == nil {
		return nil
	}
	return &SelfHealing{c: c}
}

// Sync establishes (or refreshes) the recovery point: every node's
// current image is folded into the parity group. Run it after bulk
// loads and periodically during quiet moments — degraded reads and
// repairs restore to the last Sync.
func (h *SelfHealing) Sync(ctx context.Context) error { return h.c.guard.Sync(ctx) }

// LastSync reports the recovery point time and sequence (zero values:
// never synced).
func (h *SelfHealing) LastSync() (time.Time, uint64) { return h.c.guard.LastSync() }

// AwaitHealthy blocks until every node is up and no repair is pending,
// or the context ends. An active alarm (more failures than Parity)
// fails immediately with sdds.ErrRepairBudgetExceeded. Detection is
// asynchronous: called in the instant between a failure and its first
// failed probe or send, AwaitHealthy can truthfully report healthy.
func (h *SelfHealing) AwaitHealthy(ctx context.Context) error { return h.c.sup.AwaitHealthy(ctx) }

// Alarm returns the active alarm message, or "" while the failure
// budget holds. An alarm means more nodes are confirmed down than
// parity can restore; the supervisor stands down until the operator
// intervenes (data already synced remains recoverable once enough
// nodes return).
func (h *SelfHealing) Alarm() string { return h.c.sup.Alarm() }

// Down lists nodes currently confirmed down, ascending.
func (h *SelfHealing) Down() []int {
	ids := h.c.sup.Down()
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// Repairs returns the number of node repairs completed so far.
func (h *SelfHealing) Repairs() uint64 { return h.c.sup.Repairs() }

// Journal returns the ordered repair journal: every detection, flap,
// repair attempt, completion, and alarm.
func (h *SelfHealing) Journal() []RepairRecord { return h.c.sup.Journal() }

// NodeHealth is one node's health as seen by the cluster's middleware:
// the failure detector's verdict plus retry-layer accounting and (for
// fault-injected clusters) injected-fault counters.
type NodeHealth struct {
	Node  int
	State string // "up", "suspect", "down" — "n/a" without self-healing

	// Failure detector (zero without self-healing).
	ConsecutiveFailures int
	LastError           string
	ActiveProbes        uint64
	PassiveSignals      uint64

	// Retry middleware (zero without a retry option).
	Sends        uint64
	Failures     uint64
	Retries      uint64
	BreakerTrips uint64
	BreakerOpen  bool

	// Fault injection (nil without WithFaultInjection).
	Faults *transport.FaultStats

	// Durability is the node's recovery outcome at its most recent
	// (re)start — "fresh", "recovered", or "corrupt" — or "" for
	// ephemeral nodes (no WithDataDir).
	Durability string
}

// ClusterHealth is a point-in-time availability snapshot.
type ClusterHealth struct {
	Nodes       []NodeHealth
	SelfHealing bool
	Alarm       string    // "" when nominal
	Down        []int     // confirmed-down nodes under repair
	Repairs     uint64    // completed repairs
	LastSync    time.Time // recovery point (zero: never synced)
	SyncSeq     uint64

	// Repair-journal bookkeeping (zero without self-healing): current
	// length, capacity, and how many old records the ring bound shed.
	JournalLen     int
	JournalCap     int
	JournalDropped uint64

	// Migrations is the coordinator's split/merge ledger (durable with
	// WithDataDir). A non-zero InFlight means a handoff is awaiting
	// resume; Resumed counts re-drives by this process. Invariant:
	// Started == Committed + Aborted + InFlight.
	Migrations sdds.MigrationStats
}

// ClusterHealth assembles the availability picture across every layer:
// detector verdicts, retry/breaker accounting, injected-fault counters,
// and the parity recovery point. It works on any cluster; without
// WithSelfHealing the detector fields read "n/a"/zero.
func (c *Cluster) ClusterHealth() ClusterHealth {
	n := len(c.inner.Placement().Nodes())
	out := ClusterHealth{Nodes: make([]NodeHealth, n)}
	for i := range out.Nodes {
		out.Nodes[i] = NodeHealth{Node: i, State: "n/a"}
	}
	if c.det != nil {
		out.SelfHealing = true
		for _, nh := range c.det.Snapshot() {
			i := int(nh.Node)
			if i < 0 || i >= n {
				continue
			}
			out.Nodes[i].State = nh.State.String()
			out.Nodes[i].ConsecutiveFailures = nh.ConsecutiveFailures
			if nh.LastError != "" {
				out.Nodes[i].LastError = nh.LastError
			}
			out.Nodes[i].ActiveProbes = nh.ActiveProbes
			out.Nodes[i].PassiveSignals = nh.PassiveSignals
		}
	}
	if c.retry != nil {
		for _, st := range c.retry.Stats() {
			i := int(st.Node)
			if i < 0 || i >= n {
				continue
			}
			out.Nodes[i].Sends = st.Sends
			out.Nodes[i].Failures = st.Failures
			out.Nodes[i].Retries = st.Retries
			out.Nodes[i].BreakerTrips = st.BreakerTrips
			out.Nodes[i].BreakerOpen = st.BreakerOpen
		}
	}
	if c.faulty != nil {
		for _, fs := range c.faulty.Stats() {
			i := int(fs.Node)
			if i < 0 || i >= n {
				continue
			}
			fs := fs
			out.Nodes[i].Faults = &fs
		}
	}
	if c.sup != nil {
		out.Alarm = c.sup.Alarm()
		for _, id := range c.sup.Down() {
			out.Down = append(out.Down, int(id))
		}
		out.Repairs = c.sup.Repairs()
		out.JournalLen, out.JournalDropped, out.JournalCap = c.sup.JournalStats()
	}
	c.storeMu.Lock()
	for id, rec := range c.recovery {
		if id >= 0 && id < n {
			out.Nodes[id].Durability = rec.Outcome
		}
	}
	c.storeMu.Unlock()
	if c.guard != nil {
		out.LastSync, out.SyncSeq = c.guard.LastSync()
	}
	out.Migrations = c.inner.MigrationStats()
	return out
}
