package esdds

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveContains is the obvious O(n*m) reference matcher the client-side
// plaintext filter used to hand-roll. SearchRecordsFiltered now relies
// on bytes.Contains; this differential test pins the two to identical
// behavior, including the edge cases (empty needle, needle == haystack,
// needle longer than haystack, overlapping near-matches).
func naiveContains(haystack, needle []byte) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		j := 0
		for j < len(needle) && haystack[i+j] == needle[j] {
			j++
		}
		if j == len(needle) {
			return true
		}
	}
	return false
}

func TestBytesContainsMatchesNaiveReference(t *testing.T) {
	fixed := []struct {
		haystack, needle string
	}{
		{"", ""},
		{"", "A"},
		{"A", ""},
		{"A", "A"},
		{"AB", "ABC"},
		{"AAAB", "AAB"}, // overlapping near-match
		{"ABABAC", "ABAC"},
		{"SCHWARZ THOMAS", "THOMAS"},
	}
	for _, c := range fixed {
		got := bytes.Contains([]byte(c.haystack), []byte(c.needle))
		want := naiveContains([]byte(c.haystack), []byte(c.needle))
		if got != want {
			t.Errorf("Contains(%q, %q) = %v, naive = %v", c.haystack, c.needle, got, want)
		}
	}

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		h := make([]byte, rng.Intn(40))
		for j := range h {
			h[j] = byte('A' + rng.Intn(3)) // tiny alphabet: frequent near-matches
		}
		var n []byte
		if len(h) > 0 && rng.Intn(2) == 0 {
			// Sample the needle from the haystack so true positives occur.
			off := rng.Intn(len(h))
			n = append(n, h[off:off+rng.Intn(len(h)-off+1)]...)
		} else {
			n = make([]byte, rng.Intn(6))
			for j := range n {
				n[j] = byte('A' + rng.Intn(3))
			}
		}
		if got, want := bytes.Contains(h, n), naiveContains(h, n); got != want {
			t.Fatalf("Contains(%q, %q) = %v, naive = %v", h, n, got, want)
		}
	}
}
