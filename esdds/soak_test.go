package esdds

import (
	"context"
	"fmt"
	"testing"
)

// TestSoakClusterOptionsPlumbing: the soak option set must yield a
// cluster with a live metrics registry and retry instrumentation.
func TestSoakClusterOptionsPlumbing(t *testing.T) {
	cluster := NewMemoryCluster(3, SoakClusterOptions(42)...)
	defer cluster.Close()
	if cluster.Metrics() == nil {
		t.Fatal("soak cluster has no metrics registry")
	}
	store, err := Open(cluster, KeyFromPassphrase("k"), Config{ChunkSize: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(context.Background(), 1, []byte("SMITH JOHN%%%STREET%5551234$")); err != nil {
		t.Fatal(err)
	}
	if got := len(cluster.RetryStats()); got == 0 {
		t.Fatal("soak cluster has no retry middleware accounting after traffic")
	}
}

// TestInventoryTracksGrowth: the server-side census must agree with
// the client's view — every record accounted for in some bucket, file
// growth spread over more than one node once splits have run.
func TestInventoryTracksGrowth(t *testing.T) {
	const records = 60
	cluster := NewMemoryCluster(4, SoakClusterOptions(1)...)
	defer cluster.Close()
	store, err := Open(cluster, KeyFromPassphrase("k"), Config{
		ChunkSize:     4,
		MaxBucketLoad: 8, // force splits with few records
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for rid := uint64(1); rid <= records; rid++ {
		content := []byte(fmt.Sprintf("SMITH JOHN%%%%%%A STREET%%%07d$", rid))
		if err := store.Insert(ctx, rid, content); err != nil {
			t.Fatalf("insert %d: %v", rid, err)
		}
	}
	if store.Stats().RecordSplits == 0 {
		t.Fatal("workload produced no splits; inventory test needs growth")
	}

	inv, err := store.Inventory(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	nodes := map[int]bool{}
	recBuckets := 0
	for _, b := range inv {
		if b.File != "records" {
			continue
		}
		recBuckets++
		total += b.Size
		nodes[b.Node] = true
	}
	if total != records {
		t.Fatalf("inventory accounts for %d records, want %d", total, records)
	}
	if uint64(recBuckets) != store.Stats().RecordBuckets {
		t.Fatalf("inventory sees %d record buckets, client image says %d",
			recBuckets, store.Stats().RecordBuckets)
	}
	if len(nodes) < 2 {
		t.Fatalf("file grew onto %d node(s), want spread after %d splits",
			len(nodes), store.Stats().RecordSplits)
	}
}
