package esdds_test

import (
	"context"
	"fmt"
	"log"

	"repro/esdds"
)

// Example shows the minimal store lifecycle: open over a simulated
// multicomputer, insert, search by content, fetch by key.
func Example() {
	cluster := esdds.NewMemoryCluster(4)
	defer cluster.Close()

	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("example"), esdds.Config{
		ChunkSize: 4,
		Chunkings: 2,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	store.Insert(ctx, 4154090007, []byte("SCHWARZ THOMAS"))
	store.Insert(ctx, 4154090008, []byte("LITWIN WITOLD"))

	recs, err := store.SearchRecordsFiltered(ctx, []byte("SCHWARZ"), esdds.SearchFast)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Printf("%d %s\n", r.RID, r.Content)
	}
	// Output: 4154090007 SCHWARZ THOMAS
}

// ExampleStore_SearchWord demonstrates the exact whole-word index (the
// [SWP00] adaptation): no minimum length, no false positives.
func ExampleStore_SearchWord() {
	cluster := esdds.NewMemoryCluster(2)
	defer cluster.Close()

	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("example"), esdds.Config{
		ChunkSize:  4,
		Chunkings:  2,
		WordSearch: true,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	store.Insert(ctx, 1, []byte("YU LI"))
	store.Insert(ctx, 2, []byte("YUAN MING")) // contains YU as prefix, not word

	rids, err := store.SearchWord(ctx, []byte("YU"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rids)
	// Output: [1]
}

// ExampleStore_Search contrasts the three verification modes on a
// record set with a near-miss.
func ExampleStore_Search() {
	cluster := esdds.NewMemoryCluster(3)
	defer cluster.Close()

	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("example"), esdds.Config{
		ChunkSize: 4,
		Chunkings: 4, // basic scheme: all modes available
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	store.Insert(ctx, 10, []byte("MARTINEZ MARIA"))
	store.Insert(ctx, 11, []byte("MARTINSON MARK"))

	for _, mode := range []esdds.SearchMode{esdds.SearchFast, esdds.SearchExact} {
		rids, err := store.Search(ctx, []byte("MARTINEZ"), mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %v\n", mode, rids)
	}
	// Output:
	// fast: [10]
	// exact: [10]
}
