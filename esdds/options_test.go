package esdds

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sdds"
	"repro/internal/transport"
)

func TestKeyFromBytes(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, 32)); err != nil {
		t.Fatalf("32-byte key rejected: %v", err)
	}
	if _, err := KeyFromBytes(make([]byte, 16)); err == nil {
		t.Fatal("16-byte key accepted")
	}
}

func TestOpenRejectsUnknownMatrixKind(t *testing.T) {
	cluster := NewMemoryCluster(2)
	defer cluster.Close()
	_, err := Open(cluster, KeyFromPassphrase("k"), Config{
		ChunkSize: 4,
		Chunkings: 2,
		Matrix:    MatrixKind(99),
	}, nil)
	if err == nil {
		t.Fatal("unknown matrix kind accepted")
	}
}

// TestResetBreakersReopensTraffic checks the breaker escape hatch: after
// a blackout trips a node's breaker, ResetBreakers lets traffic flow the
// instant the node is back — no cooldown wait.
func TestResetBreakersReopensTraffic(t *testing.T) {
	cluster := NewMemoryCluster(2,
		WithFaultInjection(3),
		WithRetry(transport.RetryPolicy{
			MaxAttempts:      1,
			BaseDelay:        time.Microsecond,
			MaxDelay:         time.Microsecond,
			Multiplier:       1,
			FailureThreshold: 2,
			Cooldown:         time.Hour,
		}),
	)
	defer cluster.Close()
	store, err := Open(cluster, KeyFromPassphrase("k"), Config{ChunkSize: 4, Chunkings: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := store.Insert(ctx, 1, []byte("BEFORE THE BLACKOUT")); err != nil {
		t.Fatal(err)
	}

	cluster.Faults().Blackout(0, 1)
	for i := 0; i < 6; i++ {
		store.Get(ctx, 1) //nolint:errcheck // driving the breaker open
	}
	open := false
	for _, st := range cluster.RetryStats() {
		open = open || st.BreakerOpen
	}
	if !open {
		t.Fatal("blackout never opened a breaker")
	}

	cluster.Faults().Restore(0, 1)
	cluster.ResetBreakers()
	for _, st := range cluster.RetryStats() {
		if st.BreakerOpen {
			t.Fatalf("breaker still open after ResetBreakers: %+v", st)
		}
	}
	if _, err := store.Get(ctx, 1); err != nil {
		t.Fatalf("get after reset: %v", err)
	}
}

func TestResetBreakersWithoutRetryIsNoop(t *testing.T) {
	cluster := NewMemoryCluster(1)
	defer cluster.Close()
	cluster.ResetBreakers() // must not panic
	if got := cluster.RetryStats(); got != nil {
		t.Fatalf("RetryStats without retry = %v, want nil", got)
	}
}

func TestGuardianHandleAccessors(t *testing.T) {
	cluster := NewMemoryCluster(3)
	defer cluster.Close()
	g, err := cluster.Guardian(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 1 {
		t.Fatalf("K = %d, want 1", g.K())
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	ok, err := g.Scrub()
	if err != nil || !ok {
		t.Fatalf("Scrub = %v, %v; want clean", ok, err)
	}
}

func TestSelfHealingAccessors(t *testing.T) {
	cluster := NewMemoryCluster(2, WithSelfHealing(SelfHealingConfig{
		Parity:        1,
		ProbeInterval: 5 * time.Millisecond,
	}))
	defer cluster.Close()
	heal := cluster.SelfHealing()
	if heal == nil {
		t.Fatal("SelfHealing() nil with WithSelfHealing")
	}
	if at, seq := heal.LastSync(); !at.IsZero() || seq != 0 {
		t.Fatalf("LastSync before any sync = %v, %d", at, seq)
	}
	if err := heal.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if at, seq := heal.LastSync(); at.IsZero() || seq != 1 {
		t.Fatalf("LastSync after sync = %v, %d; want nonzero, 1", at, seq)
	}
	if down := heal.Down(); len(down) != 0 {
		t.Fatalf("Down = %v on a healthy cluster", down)
	}

	plain := NewMemoryCluster(1)
	defer plain.Close()
	if plain.SelfHealing() != nil {
		t.Fatal("SelfHealing() non-nil without the option")
	}
}

// TestDialClusterOptionPlumbing checks construction-time plumbing of a
// dialed cluster: transports dial lazily, so building (with middleware
// and observability) succeeds without live daemons.
func TestDialClusterOptionPlumbing(t *testing.T) {
	c, err := DialCluster(map[int]string{0: "127.0.0.1:1", 1: "127.0.0.1:2"},
		WithObservability(), WithDefaultRetry())
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics() == nil {
		t.Fatal("dialed cluster missing metrics registry")
	}
	if c.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", c.Nodes())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchErrorUnwrap drives a partial batch failure through the
// public Insert path and checks that the error exposes the per-node
// causes to errors.Is/As via Unwrap.
func TestBatchErrorUnwrap(t *testing.T) {
	cluster := NewMemoryCluster(3, WithFaultInjection(5))
	defer cluster.Close()
	store, err := Open(cluster, KeyFromPassphrase("k"), Config{
		ChunkSize:       4,
		Chunkings:       2,
		DispersionSites: 2,
		MaxBucketLoad:   4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Spread index slots over all nodes first so a later insert fans out.
	for i := 0; i < 20; i++ {
		if err := store.Insert(ctx, uint64(i), []byte(fmt.Sprintf("WARMUP RECORD %04d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Freeze growth: a split reaching the dead node would fail before
	// the batched index scatter gets its chance.
	cluster.inner.SetMaxLoad(sdds.FileRecords, 1<<20)
	cluster.inner.SetMaxLoad(sdds.FileIndex, 1<<20)

	cluster.Faults().Blackout(2)
	var batchErr *sdds.BatchError
	for i := 20; i < 60 && batchErr == nil; i++ {
		err := store.Insert(ctx, uint64(i), []byte(fmt.Sprintf("BLACKOUT RECORD %04d", i)))
		if err != nil && !errors.As(err, &batchErr) {
			// The record put itself can land on the dead node; only batch
			// index failures carry BatchError.
			continue
		}
	}
	if batchErr == nil {
		t.Fatal("no insert produced a BatchError with node 2 blacked out")
	}
	if len(batchErr.Failures) == 0 {
		t.Fatal("BatchError carries no failures")
	}
	unwrapped := batchErr.Unwrap()
	if len(unwrapped) != len(batchErr.Failures) {
		t.Fatalf("Unwrap returned %d errors for %d failures", len(unwrapped), len(batchErr.Failures))
	}
	if !errors.Is(batchErr, transport.ErrNodeDown) {
		t.Fatalf("errors.Is(batchErr, ErrNodeDown) = false; failures: %v", unwrapped)
	}
}

// TestSearchDetailedReportsFailedNodes pins the no-coverage outcome: a
// dead node on a cluster without self-healing shows up in FailedNodes
// and marks the result incomplete, while Search proper fails loudly.
func TestSearchDetailedReportsFailedNodes(t *testing.T) {
	cluster := NewMemoryCluster(3)
	defer cluster.Close()
	store, err := Open(cluster, KeyFromPassphrase("k"), Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := store.Insert(ctx, uint64(i), []byte(fmt.Sprintf("DETAIL RECORD %04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.KillNode(1); err != nil {
		t.Fatal(err)
	}
	out, err := store.SearchDetailed(ctx, []byte("DETAIL RECORD"), SearchFast)
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete {
		t.Fatal("search with a dead node reported complete")
	}
	if len(out.FailedNodes) != 1 || out.FailedNodes[0] != 1 {
		t.Fatalf("FailedNodes = %v, want [1]", out.FailedNodes)
	}
	if len(out.DegradedNodes) != 0 {
		t.Fatalf("DegradedNodes = %v without self-healing", out.DegradedNodes)
	}
	if _, err := store.Search(ctx, []byte("DETAIL RECORD"), SearchFast); err == nil {
		t.Fatal("strict Search succeeded with a dead node")
	}
}
