// Package esdds is the public API of the encrypted, content-searchable
// scalable distributed data structure (Schwarz, Tsui, Litwin — ICDE
// 2006). A Store keeps records in two SDDS files spread across storage
// nodes:
//
//   - the record-store file holds every record under strong
//     authenticated encryption (AES-CTR with a synthetic IV and
//     HMAC-SHA256), under which nothing is searchable;
//   - the index file holds, per record, M chunked / lossily-encoded /
//     ECB-encrypted / dispersed index records that support exact
//     substring search over ciphertext.
//
// All key material stays in the client; storage nodes execute searches
// over opaque pieces. A search broadcasts encrypted query series to all
// nodes in parallel, combines the per-site hits (all K dispersion sites
// of a chunking must agree at one offset), applies the chosen
// verification mode, and finally fetches and decrypts the matching
// records.
//
// Quick start:
//
//	cluster := esdds.NewMemoryCluster(4)
//	store, _ := esdds.Open(cluster, esdds.KeyFromPassphrase("secret"),
//	    esdds.Config{ChunkSize: 4, Chunkings: 2}, nil)
//	store.Insert(ctx, 7, []byte("SCHWARZ THOMAS"))
//	rids, _ := store.Search(ctx, []byte("SCHWARZ"), esdds.SearchFast)
package esdds

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/cipherx"
	"repro/internal/core"
	"repro/internal/disperse"
	"repro/internal/encode"
	"repro/internal/sdds"
	"repro/internal/wordindex"
)

// Key is a 256-bit client master key. All subkeys (record encryption,
// index ECB, dispersal matrix) are derived from it; it never leaves the
// client process.
type Key = cipherx.Key

// KeyFromPassphrase derives a Key from a passphrase (for examples and
// tools; supply uniformly random keys in production).
func KeyFromPassphrase(p string) Key { return cipherx.KeyFromPassphrase(p) }

// KeyFromBytes builds a Key from exactly 32 bytes.
func KeyFromBytes(b []byte) (Key, error) { return cipherx.KeyFromBytes(b) }

// MatrixKind selects the Stage-3 dispersal matrix family.
type MatrixKind uint8

const (
	// MatrixCauchy: provably nonsingular, all coefficients nonzero (the
	// paper's recommendation). Needs 2K < 2^(chunkBits/K).
	MatrixCauchy MatrixKind = iota
	// MatrixVandermonde: square Vandermonde matrix.
	MatrixVandermonde
	// MatrixRandomDense: key-derived random nonsingular matrix with no
	// zero entries.
	MatrixRandomDense
	// MatrixRandom: key-derived random nonsingular matrix (works for
	// every valid geometry; the paper's Table-2 construction).
	MatrixRandom
)

func (m MatrixKind) internal() (disperse.MatrixKind, error) {
	switch m {
	case MatrixCauchy:
		return disperse.MatrixCauchy, nil
	case MatrixVandermonde:
		return disperse.MatrixVandermonde, nil
	case MatrixRandomDense:
		return disperse.MatrixRandomDense, nil
	case MatrixRandom:
		return disperse.MatrixRandom, nil
	default:
		return 0, fmt.Errorf("esdds: unknown matrix kind %d", m)
	}
}

// SearchMode selects how thoroughly a search verifies hits across
// chunkings. All modes already require the K dispersion sites of each
// chunking to agree.
type SearchMode uint8

const (
	// SearchFast sends the minimal alignment series (S/M of them) and
	// accepts any single chunking hit — cheapest, most false positives
	// (§2.5 semantics).
	SearchFast SearchMode = iota
	// SearchVerified sends all S alignment series and requires every
	// chunking to report a hit (§2.3 semantics).
	SearchVerified
	// SearchExact additionally requires all chunkings to agree on one
	// occurrence position — with no lossy encoding this eliminates index
	// false positives entirely.
	SearchExact
)

func (m SearchMode) internal() core.VerifyMode {
	switch m {
	case SearchVerified:
		return core.VerifyAll
	case SearchExact:
		return core.VerifyAligned
	default:
		return core.VerifyAny
	}
}

// String implements fmt.Stringer.
func (m SearchMode) String() string {
	switch m {
	case SearchFast:
		return "fast"
	case SearchVerified:
		return "verified"
	case SearchExact:
		return "exact"
	default:
		return "unknown"
	}
}

// Config fixes the index geometry and hardening of one Store.
type Config struct {
	// ChunkSize is S, the symbols per index chunk. Required, >= 1.
	ChunkSize int
	// Chunkings is M, the number of shifted chunkings stored per record
	// (1 <= M <= S, M | S). More chunkings mean more storage and fewer
	// false positives. Default: ChunkSize (the basic scheme).
	Chunkings int
	// DropPartialChunks suppresses padded head/tail chunks (the §2.1
	// countermeasure); matches overlapping the record edges are then not
	// found.
	DropPartialChunks bool
	// SymbolCodes, when nonzero, trains a Stage-2 symbol-level codebook
	// with this many code values on the training corpus passed to Open.
	// Mutually exclusive with ChunkCodes.
	SymbolCodes int
	// ChunkCodes, when nonzero, trains a Stage-2 chunk-level codebook
	// (groups of ChunkSize symbols → one of ChunkCodes values).
	ChunkCodes int
	// DispersionSites is K, the number of Stage-3 dispersion sites per
	// chunk. Default 1 (no dispersion). K must divide the packed chunk
	// width in bits.
	DispersionSites int
	// Matrix selects the dispersal matrix family. Default MatrixRandom.
	Matrix MatrixKind
	// MaxBucketLoad tunes the LH* split threshold (records per bucket).
	// Default sdds.DefaultMaxLoad.
	MaxBucketLoad int
	// WordSearch additionally maintains a word-token index ([SWP00]
	// adaptation) enabling exact whole-word search via SearchWord.
	WordSearch bool
}

func (c *Config) fillDefaults() {
	if c.Chunkings == 0 {
		c.Chunkings = c.ChunkSize
	}
	if c.DispersionSites == 0 {
		c.DispersionSites = 1
	}
}

// Store is an open encrypted searchable store bound to a cluster.
type Store struct {
	cluster  *sdds.Cluster
	pipeline *core.Pipeline
	records  *cipherx.RecordCipher
	words    *wordindex.Index // nil unless Config.WordSearch
	slotBits uint
}

// ErrNeedTrainingCorpus reports a Config requesting Stage-2 encoding
// without training data.
var ErrNeedTrainingCorpus = errors.New("esdds: Stage-2 encoding requires a training corpus")

// ErrNotFound reports a missing record.
var ErrNotFound = errors.New("esdds: record not found")

// Open binds a Store to a cluster under the given master key. The
// trainingCorpus (a representative sample of record contents) is
// required when the config enables Stage-2 lossy encoding; the trained
// codebook must be identical across clients, so persist it with
// Store.WriteCodebook and open follow-up clients with OpenWithCodebook.
func Open(cluster *Cluster, key Key, cfg Config, trainingCorpus [][]byte) (*Store, error) {
	cfg.fillDefaults()
	if cfg.SymbolCodes > 0 && cfg.ChunkCodes > 0 {
		return nil, errors.New("esdds: SymbolCodes and ChunkCodes are mutually exclusive")
	}
	var cb *encode.Codebook
	var err error
	switch {
	case cfg.SymbolCodes > 0:
		if len(trainingCorpus) == 0 {
			return nil, ErrNeedTrainingCorpus
		}
		cb, err = encode.Train(trainingCorpus, 1, cfg.SymbolCodes)
	case cfg.ChunkCodes > 0:
		if len(trainingCorpus) == 0 {
			return nil, ErrNeedTrainingCorpus
		}
		cb, err = encode.Train(trainingCorpus, cfg.ChunkSize, cfg.ChunkCodes)
	}
	if err != nil {
		return nil, err
	}
	return openInternal(cluster, key, cfg, cb)
}

// openInternal finishes Open with an already-trained (or absent)
// Stage-2 codebook. cfg must already have defaults filled.
func openInternal(cluster *Cluster, key Key, cfg Config, cb *encode.Codebook) (*Store, error) {
	kind, err := cfg.Matrix.internal()
	if err != nil {
		return nil, err
	}
	params := core.Params{
		Chunk: chunk.Params{
			S:           cfg.ChunkSize,
			M:           cfg.Chunkings,
			DropPartial: cfg.DropPartialChunks,
		},
		DisperseK:  cfg.DispersionSites,
		MatrixKind: kind,
		Key:        cipherx.DeriveKey(key, "index-file"),
	}
	switch {
	case cfg.SymbolCodes > 0:
		params.SymbolCodebook = cb
	case cfg.ChunkCodes > 0:
		params.ChunkCodebook = cb
	}
	pl, err := core.NewPipeline(params)
	if err != nil {
		return nil, err
	}
	if cfg.MaxBucketLoad > 0 {
		cluster.inner.SetMaxLoad(sdds.FileRecords, cfg.MaxBucketLoad)
		cluster.inner.SetMaxLoad(sdds.FileIndex, cfg.MaxBucketLoad)
	}
	st := &Store{
		cluster:  cluster.inner,
		pipeline: pl,
		records:  cipherx.NewRecordCipher(cipherx.DeriveKey(key, "record-file")),
		slotBits: sdds.SlotBits(pl.Chunkings(), pl.K()),
	}
	if cfg.WordSearch {
		st.words = wordindex.New(cipherx.DeriveKey(key, "word-file"), nil)
	}
	return st, nil
}

// MinQueryLen returns the minimum searchable substring length under
// SearchFast. SearchVerified/SearchExact need 2*ChunkSize−1 symbols.
func (s *Store) MinQueryLen() int { return s.pipeline.MinQueryLen() }

// MinQueryLenFor returns the minimum substring length for a mode.
func (s *Store) MinQueryLenFor(mode SearchMode) int {
	if mode == SearchFast {
		return s.pipeline.MinQueryLen()
	}
	return 2*s.pipeline.Params().Chunk.S - 1
}

func ridAD(rid uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rid)
	return b[:]
}

// Insert stores a record: the content sealed at the record-store file
// and M×K index pieces at the index file.
func (s *Store) Insert(ctx context.Context, rid uint64, content []byte) error {
	sealed := s.records.Seal(ridAD(rid), content)
	if err := s.cluster.Put(ctx, sdds.FileRecords, rid, sealed); err != nil {
		return err
	}
	recs, err := s.pipeline.BuildIndex(rid, content)
	if err != nil {
		return err
	}
	if err := s.cluster.InsertIndexed(ctx, sdds.FileIndex, recs, s.pipeline.K(), s.slotBits); err != nil {
		return err
	}
	return s.insertWords(ctx, rid, content)
}

// Get fetches and decrypts a record.
func (s *Store) Get(ctx context.Context, rid uint64) ([]byte, error) {
	sealed, ok, err := s.cluster.Get(ctx, sdds.FileRecords, rid)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	return s.records.Open(ridAD(rid), sealed)
}

// Delete removes a record and all its index pieces.
func (s *Store) Delete(ctx context.Context, rid uint64) error {
	found, err := s.cluster.Delete(ctx, sdds.FileRecords, rid)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	if err := s.cluster.DeleteIndexed(ctx, sdds.FileIndex, rid, s.pipeline.Chunkings(), s.pipeline.K(), s.slotBits); err != nil {
		return err
	}
	return s.deleteWords(ctx, rid)
}

// Search returns the RIDs of records whose content (appears to) contain
// the substring. Depending on the mode and Stage-2 lossiness the result
// may include false positives, but never misses a true occurrence.
//
// On a self-healing cluster (WithSelfHealing), Search stays complete
// while at most Parity nodes are down: unreachable nodes' index buckets
// are answered transparently from the guardian's last-synced parity
// images. Use SearchDetailed to observe when that happened and how
// stale the served images were.
func (s *Store) Search(ctx context.Context, substring []byte, mode SearchMode) ([]uint64, error) {
	query, err := s.pipeline.BuildQuery(substring, mode != SearchFast)
	if err != nil {
		return nil, err
	}
	return s.cluster.Search(ctx, sdds.FileIndex, s.pipeline, query, mode.internal())
}

// Record is one decrypted search result.
type Record struct {
	RID     uint64
	Content []byte
}

// SearchRecords runs Search and fetches + decrypts every hit — the full
// client flow of the paper's Figure 3 (index sites report RIDs, the
// client pulls the sealed records from the record store site).
func (s *Store) SearchRecords(ctx context.Context, substring []byte, mode SearchMode) ([]Record, error) {
	rids, err := s.Search(ctx, substring, mode)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(rids))
	for _, rid := range rids {
		content, err := s.Get(ctx, rid)
		if err != nil {
			return nil, fmt.Errorf("esdds: fetching hit %d: %w", rid, err)
		}
		out = append(out, Record{RID: rid, Content: content})
	}
	return out, nil
}

// SearchRecordsFiltered is SearchRecords followed by client-side
// post-filtering on the decrypted plaintext, discarding the scheme's
// false positives. This gives exact results at the cost of fetching the
// (typically few) extra records.
func (s *Store) SearchRecordsFiltered(ctx context.Context, substring []byte, mode SearchMode) ([]Record, error) {
	recs, err := s.SearchRecords(ctx, substring, mode)
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, r := range recs {
		if bytes.Contains(r.Content, substring) {
			out = append(out, r)
		}
	}
	return out, nil
}

// Stats reports the store's SDDS state: bucket counts and split/IAM
// counters per file.
type Stats struct {
	RecordBuckets uint64
	IndexBuckets  uint64
	RecordSplits  int
	IndexSplits   int
	IAMs          int
}

// Stats returns operational counters.
func (s *Store) Stats() Stats {
	rs, riam := s.cluster.Stats(sdds.FileRecords)
	is, iiam := s.cluster.Stats(sdds.FileIndex)
	return Stats{
		RecordBuckets: s.cluster.State(sdds.FileRecords).Buckets(),
		IndexBuckets:  s.cluster.State(sdds.FileIndex).Buckets(),
		RecordSplits:  rs,
		IndexSplits:   is,
		IAMs:          riam + iiam,
	}
}

// SearchBestEffort is Search with node-failure tolerance: unreachable
// nodes are skipped and reported in failedNodes instead of failing the
// whole search. Results are an under-approximation — hits whose index
// pieces lived on failed nodes are lost, but nothing spurious is ever
// added (K-site agreement still applies). On a self-healing cluster a
// down node within the parity budget is served from its last-synced
// image instead of being reported failed; see SearchDetailed. Recover
// the failed sites (see the LH*RS machinery demonstrated in
// examples/availability) to restore exactness.
func (s *Store) SearchBestEffort(ctx context.Context, substring []byte, mode SearchMode) (rids []uint64, failedNodes []int, err error) {
	out, err := s.SearchDetailed(ctx, substring, mode)
	if err != nil {
		return nil, nil, err
	}
	return out.RIDs, out.FailedNodes, nil
}

// SearchOutcome carries a search's results plus its availability
// metadata: whether the answer is complete, which nodes (if any) were
// served degraded from last-synced parity images, and how stale those
// images were.
type SearchOutcome struct {
	// RIDs are the matching record IDs (sorted, deduplicated).
	RIDs []uint64
	// Complete is true when every node's index buckets contributed —
	// live or served degraded. False means FailedNodes' hits are
	// missing.
	Complete bool
	// DegradedNodes were unreachable but answered from the guardian's
	// last-synced images; their contribution may miss records inserted
	// after StaleSince (nothing spurious is added).
	DegradedNodes []int
	// FailedNodes were unreachable with no degraded coverage.
	FailedNodes []int
	// StaleSince is the recovery point the degraded nodes were served
	// from (zero when DegradedNodes is empty).
	StaleSince time.Time
}

// SearchDetailed is Search with full availability metadata. Unlike
// Search it does not fail on unreachable nodes — inspect
// Outcome.Complete / FailedNodes to decide whether the
// under-approximation is acceptable.
func (s *Store) SearchDetailed(ctx context.Context, substring []byte, mode SearchMode) (SearchOutcome, error) {
	query, err := s.pipeline.BuildQuery(substring, mode != SearchFast)
	if err != nil {
		return SearchOutcome{}, err
	}
	rids, info, err := s.cluster.SearchPartialInfo(ctx, sdds.FileIndex, s.pipeline, query, mode.internal())
	if err != nil {
		return SearchOutcome{}, err
	}
	out := SearchOutcome{
		RIDs:       rids,
		Complete:   info.Complete(),
		StaleSince: info.StaleSince,
	}
	for _, n := range info.Degraded {
		out.DegradedNodes = append(out.DegradedNodes, int(n))
	}
	for _, n := range info.Failed {
		out.FailedNodes = append(out.FailedNodes, int(n))
	}
	return out, nil
}
