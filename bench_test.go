package repro

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§6–7), plus ablations of the design choices DESIGN.md
// calls out and microbenchmarks of every substrate. Run:
//
//	go test -bench=. -benchmem
//
// Table benchmarks regenerate the experiment on a bench-scale corpus
// each iteration, so ns/op measures the cost of reproducing the row;
// cmd/esdds-repro runs the same code at paper scale.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/esdds"
	"repro/internal/chunk"
	"repro/internal/cipherx"
	"repro/internal/core"
	"repro/internal/disperse"
	"repro/internal/encode"
	"repro/internal/experiments"
	"repro/internal/gf"
	"repro/internal/lhstar"
	"repro/internal/phonebook"
	"repro/internal/rs"
	"repro/internal/stats"
	"repro/internal/wordindex"
)

// benchCorpus is shared across table benchmarks (building it is not part
// of the measured work).
var (
	corpusOnce  sync.Once
	benchCorpus *experiments.Corpus
	benchSample *experiments.Corpus
)

func corpora() (*experiments.Corpus, *experiments.Corpus) {
	corpusOnce.Do(func() {
		benchCorpus = experiments.NewCorpus(20000, experiments.DefaultSeed)
		benchSample = benchCorpus.Sample(1000, experiments.DefaultSeed+1)
	})
	return benchCorpus, benchSample
}

var benchKey = cipherx.KeyFromPassphrase("bench")

// --- Table and figure reproduction benchmarks ---

func BenchmarkTable1RawChi2(b *testing.B) {
	c, _ := corpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := experiments.RunTable1(c)
		if t.ChiTriple <= t.ChiDouble {
			b.Fatal("shape violated")
		}
	}
}

func BenchmarkTable2Dispersion(b *testing.B) {
	c, _ := corpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable2(c, benchKey)
		if err != nil {
			b.Fatal(err)
		}
		if t.ChiSingle <= 0 {
			b.Fatal("unexpected uniformity")
		}
	}
}

func BenchmarkTable3Preprocess(b *testing.B) {
	c, _ := corpora()
	for _, cell := range []struct{ cs, enc int }{
		{1, 8}, {2, 16}, {4, 64}, {6, 128},
	} {
		b.Run(fmt.Sprintf("cs=%d/enc=%d", cell.cs, cell.enc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunTable3Cell(c, cell.cs, cell.enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable4FalsePositives(b *testing.B) {
	_, sample := corpora()
	small := sample.Sample(300, 3) // keep per-iteration cost sane
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable4(small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5ChunkEncoding(b *testing.B) {
	_, sample := corpora()
	small := sample.Sample(300, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable5(small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5Training(b *testing.B) {
	_, sample := corpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure5(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomnessBattery(b *testing.B) {
	_, sample := corpora()
	small := sample.Sample(200, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRandomness(small, benchKey); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices in DESIGN.md §5) ---

// BenchmarkCipherAblation compares the small-domain Feistel PRP widths
// against native AES-ECB on a 16-byte chunk — the cost of supporting
// sub-block chunk sizes.
func BenchmarkCipherAblation(b *testing.B) {
	for _, w := range []uint{8, 16, 32, 64} {
		prp, err := cipherx.NewBitPRP(benchKey, w)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("feistel-%dbit", w), func(b *testing.B) {
			var acc uint64
			for i := 0; i < b.N; i++ {
				acc = prp.EncryptBits(acc & (1<<w - 1))
			}
			sinkU64 = acc
		})
	}
	ecb, err := cipherx.NewByteCipher(benchKey, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("aes-ecb-128bit", func(b *testing.B) {
		buf := make([]byte, 16)
		for i := 0; i < b.N; i++ {
			ecb.Encrypt(buf, buf)
		}
	})
}

var sinkU64 uint64

// BenchmarkDispersionMatrix compares dispersal matrix families at the
// paper's recommended K=4.
func BenchmarkDispersionMatrix(b *testing.B) {
	for _, kind := range []struct {
		name string
		k    disperse.MatrixKind
		g    uint
	}{
		{"cauchy-4x4-gf16", disperse.MatrixCauchy, 16},
		{"vandermonde-4x4-gf16", disperse.MatrixVandermonde, 16},
		{"random-4x4-gf2", disperse.MatrixRandom, 2},
		{"randomdense-4x4-gf4", disperse.MatrixRandomDense, 4},
	} {
		d, err := disperse.New(disperse.Params{K: 4, G: kind.g, Kind: kind.k, Key: benchKey})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.name, func(b *testing.B) {
			dst := make([]disperse.Piece, 4)
			mask := uint64(1)<<d.ChunkBits() - 1
			for i := 0; i < b.N; i++ {
				d.DisperseInto(dst, uint64(i)&mask)
			}
		})
	}
}

// BenchmarkChunkingsAblation measures insert+search cost as the number
// of chunkings M grows at fixed S: the storage/robustness knob of §2.5.
func BenchmarkChunkingsAblation(b *testing.B) {
	entries := phonebook.Generate(500, 1)
	for _, m := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			pl, err := core.NewPipeline(core.Params{
				Chunk:      chunk.Params{S: 4, M: m},
				DisperseK:  1,
				MatrixKind: disperse.MatrixRandom,
				Key:        benchKey,
			})
			if err != nil {
				b.Fatal(err)
			}
			ix := core.NewMemIndex(pl)
			for i, e := range entries {
				if err := ix.Insert(uint64(i), []byte(e.Name)); err != nil {
					b.Fatal(err)
				}
			}
			query := []byte("MARTINEZ")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Search(query, core.VerifyAny); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSearch measures end-to-end distributed search as the
// node count grows (the paper's parallel-scan scaling claim).
func BenchmarkParallelSearch(b *testing.B) {
	entries := phonebook.Generate(2000, 2)
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			cluster := esdds.NewMemoryCluster(nodes)
			defer cluster.Close()
			store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("bench"), esdds.Config{
				ChunkSize: 4,
				Chunkings: 2,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			for i, e := range entries {
				if err := store.Insert(ctx, uint64(i), []byte(e.Name)); err != nil {
					b.Fatal(err)
				}
			}
			query := []byte("MARTINEZ")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Search(ctx, query, esdds.SearchFast); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyModes compares the three verification strengths.
func BenchmarkVerifyModes(b *testing.B) {
	entries := phonebook.Generate(1000, 3)
	cluster := esdds.NewMemoryCluster(4)
	defer cluster.Close()
	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("bench"), esdds.Config{
		ChunkSize: 4,
		Chunkings: 4,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i, e := range entries {
		if err := store.Insert(ctx, uint64(i), []byte(e.Name)); err != nil {
			b.Fatal(err)
		}
	}
	query := []byte("MARTINEZ")
	for _, mode := range []esdds.SearchMode{esdds.SearchFast, esdds.SearchVerified, esdds.SearchExact} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := store.Search(ctx, query, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate microbenchmarks ---

func BenchmarkGFMul(b *testing.B) {
	for _, g := range []uint{4, 8, 16} {
		f := gf.MustNew(g)
		mask := gf.Elem(f.Mask())
		b.Run(fmt.Sprintf("gf%d", 1<<g), func(b *testing.B) {
			var acc gf.Elem = 1
			for i := 0; i < b.N; i++ {
				acc = f.Mul(acc|1, gf.Elem(i)&mask|1)
			}
			sinkU64 = uint64(acc)
		})
	}
}

func BenchmarkRSEncode(b *testing.B) {
	g, err := rs.NewGroup(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 4096)
		for j := range data[i] {
			data[i][j] = byte(i*31 + j)
		}
	}
	b.SetBytes(4 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSRecover(b *testing.B) {
	g, err := rs.NewGroup(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 4096)
	}
	parity, err := g.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	b.SetBytes(4 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(full))
		copy(shards, full)
		shards[1], shards[3] = nil, nil
		if err := g.Recover(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLHStarInsert(b *testing.B) {
	f := lhstar.NewFile(64)
	img := &lhstar.Image{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(img, uint64(i)*2654435761, []byte{1})
	}
}

func BenchmarkLHStarLookup(b *testing.B) {
	f := lhstar.NewFile(64)
	for i := 0; i < 100000; i++ {
		f.Insert(nil, uint64(i)*2654435761, []byte{1})
	}
	img := &lhstar.Image{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(img, uint64(i%100000)*2654435761)
	}
}

func BenchmarkRecordSeal(b *testing.B) {
	rc := cipherx.NewRecordCipher(benchKey)
	content := []byte("SCHWARZ THOMAS%%%%%%%%%%%%%%%%415-409-0007$$")
	ad := []byte("rid-007")
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed := rc.Seal(ad, content)
		if len(sealed) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	pl, err := core.NewPipeline(core.Params{
		Chunk:      chunk.Params{S: 4, M: 2},
		DisperseK:  4,
		MatrixKind: disperse.MatrixRandom,
		Key:        benchKey,
	})
	if err != nil {
		b.Fatal(err)
	}
	content := []byte("SCHWARZ THOMAS AND COMPANY INCORPORATED")
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.BuildIndex(uint64(i), content); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodebookTrain(b *testing.B) {
	c, _ := corpora()
	names := c.Names[:5000]
	for _, gs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("group=%d", gs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := encode.Train(names, gs, 32); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEndToEndInsert(b *testing.B) {
	cluster := esdds.NewMemoryCluster(4)
	defer cluster.Close()
	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("bench"), esdds.Config{
		ChunkSize: 4,
		Chunkings: 2,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	content := []byte("SCHWARZ THOMAS J AND FAMILY")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Insert(ctx, uint64(i), content); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChiSquare(b *testing.B) {
	c, _ := corpora()
	b.Run("triplets-30-alphabet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counter := stats.NewNGramCounter(3)
			for _, name := range c.Names[:5000] {
				counter.AddBytes(name)
			}
			if counter.ChiSquare(len(c.Alphabet)) <= 0 {
				b.Fatal("unexpected")
			}
		}
	})
}

// BenchmarkWordSearch measures the [SWP00] word-index path end to end.
func BenchmarkWordSearch(b *testing.B) {
	entries := phonebook.Generate(2000, 4)
	cluster := esdds.NewMemoryCluster(4)
	defer cluster.Close()
	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("bench"), esdds.Config{
		ChunkSize:  4,
		Chunkings:  2,
		WordSearch: true,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i, e := range entries {
		if err := store.Insert(ctx, uint64(i), []byte(e.Name)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.SearchWord(ctx, []byte("MARTINEZ")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWordTokens measures client-side token derivation.
func BenchmarkWordTokens(b *testing.B) {
	ix := wordindex.New(benchKey, nil)
	content := []byte("ABOGADO ALEJANDRO & CATHERINE SCHWARZ THOMAS JUNIOR")
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ix.Tokens(content); len(got) == 0 {
			b.Fatal("no tokens")
		}
	}
}

// BenchmarkBucketGroupUpdate measures the LH*RS delta parity update for
// one bucket-image change.
func BenchmarkBucketGroupUpdate(b *testing.B) {
	bg, err := rs.NewBucketGroup(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	image := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		image[i%4096] = byte(i)
		if err := bg.Update(i%4, image); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageTradeoffRow regenerates one §2.5 ablation row.
func BenchmarkStorageTradeoffRow(b *testing.B) {
	_, sample := corpora()
	small := sample.Sample(200, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStorageTradeoff(small, 4); err != nil {
			b.Fatal(err)
		}
	}
}
