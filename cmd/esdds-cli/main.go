// Command esdds-cli is an interactive client for an esdds cluster. It
// opens an encrypted store over running esdds-node daemons (or an
// in-process simulated cluster with -mem) and accepts commands on
// stdin:
//
//	load <file> [limit]     bulk-load a Figure-4 directory file
//	insert <rid> <content>  store one record
//	get <rid>               fetch and decrypt one record
//	delete <rid>            remove a record and its index
//	search <substring>      encrypted substring search (filtered)
//	rawsearch <substring>   encrypted search without client-side filter
//	stats                   SDDS state (buckets, splits, IAMs) plus a
//	                        metrics summary: op counts and search
//	                        latency quantiles (p50/p90/p99)
//	metrics                 full metrics exposition (every counter,
//	                        gauge, and histogram, /metrics format)
//	health                  per-node health: detector state, retry and
//	                        breaker accounting, injected-fault counters
//	sync                    establish the LH*RS recovery point (-self-heal)
//	heal                    wait for automatic repair to converge (-self-heal)
//	kill <node>             crash a node (-mem clusters; pairs with -self-heal)
//	quit
//
// Because the LH* split coordinator lives in the client process, load
// and search should run in one session.
//
// Example:
//
//	esdds-cli -mem 4 -passphrase secret <<EOF
//	insert 7 SCHWARZ THOMAS
//	search SCHWARZ
//	EOF
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/esdds"
	"repro/internal/phonebook"
	"repro/internal/transport"
)

func main() {
	var (
		nodes      = flag.String("nodes", "", "comma-separated node addresses (ID order)")
		mem        = flag.Int("mem", 0, "use an in-process simulated cluster of this many nodes")
		passphrase = flag.String("passphrase", "", "client master passphrase (required)")
		chunkSize  = flag.Int("chunk", 4, "index chunk size S")
		chunkings  = flag.Int("chunkings", 2, "number of chunkings M")
		disperseK  = flag.Int("disperse", 1, "dispersion sites K")
		symCodes   = flag.Int("symcodes", 0, "Stage-2 symbol encodings (0 = off)")
		trainFile  = flag.String("train", "", "directory file to train the Stage-2 codebook on")

		retries   = flag.Int("retries", 4, "max delivery attempts per request (1 disables retry)")
		retryBase = flag.Duration("retry-base", 10*time.Millisecond, "first retry backoff; doubles per retry")
		retryMax  = flag.Duration("retry-max", time.Second, "backoff cap")
		breaker   = flag.Int("breaker", 8, "consecutive failures opening a node's circuit breaker (0 disables)")
		cooldown  = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker rejects requests")

		selfHeal  = flag.Int("self-heal", 0, "enable self-healing with this parity (tolerated simultaneous node failures)")
		faultSeed = flag.Int64("fault-seed", 0, "insert a deterministic fault injector with this seed (0 = off)")
		dataDir   = flag.String("data-dir", "", "make -mem nodes durable: per-node write-ahead logs under this directory")
		observe   = flag.Bool("observe", true, "instrument every layer into a metrics registry (stats/metrics commands)")
	)
	flag.Parse()
	if *passphrase == "" {
		fmt.Fprintln(os.Stderr, "esdds-cli: -passphrase is required")
		os.Exit(2)
	}

	var opts []esdds.ClusterOption
	if *retries > 1 || *breaker > 0 {
		opts = append(opts, esdds.WithRetry(transport.RetryPolicy{
			MaxAttempts:      *retries,
			BaseDelay:        *retryBase,
			MaxDelay:         *retryMax,
			Multiplier:       2,
			Jitter:           0.2,
			FailureThreshold: *breaker,
			Cooldown:         *cooldown,
		}))
	}
	if *faultSeed != 0 {
		opts = append(opts, esdds.WithFaultInjection(*faultSeed))
	}
	if *selfHeal > 0 {
		opts = append(opts, esdds.WithSelfHealing(esdds.SelfHealingConfig{
			Parity: *selfHeal,
		}))
	}
	if *dataDir != "" {
		opts = append(opts, esdds.WithDataDir(*dataDir))
	}
	if *observe {
		opts = append(opts, esdds.WithObservability())
	}

	var cluster *esdds.Cluster
	var err error
	switch {
	case *mem > 0:
		cluster = esdds.NewMemoryCluster(*mem, opts...)
	case *nodes != "":
		addrs := make(map[int]string)
		for i, a := range strings.Split(*nodes, ",") {
			addrs[i] = strings.TrimSpace(a)
		}
		cluster, err = esdds.DialCluster(addrs, opts...)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "esdds-cli: need -nodes or -mem")
		os.Exit(2)
	}
	defer cluster.Close()

	var corpus [][]byte
	if *symCodes > 0 {
		if *trainFile == "" {
			fatal(fmt.Errorf("-symcodes needs -train <directory file>"))
		}
		f, err := os.Open(*trainFile)
		if err != nil {
			fatal(err)
		}
		entries, err := phonebook.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		corpus = phonebook.Names(entries)
	}

	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase(*passphrase), esdds.Config{
		ChunkSize:       *chunkSize,
		Chunkings:       *chunkings,
		DispersionSites: *disperseK,
		SymbolCodes:     *symCodes,
	}, corpus)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("store open: S=%d M=%d K=%d, min query length %d\n",
		*chunkSize, *chunkings, *disperseK, store.MinQueryLen())

	repl(store, cluster)
}

func repl(store *esdds.Store, cluster *esdds.Cluster) {
	ctx := context.Background()
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch cmd {
		case "quit", "exit":
			return
		case "load":
			file, limitStr, _ := strings.Cut(rest, " ")
			limit := 0
			if limitStr != "" {
				limit, _ = strconv.Atoi(limitStr)
			}
			loadFile(ctx, store, file, limit)
		case "insert":
			ridStr, content, ok := strings.Cut(rest, " ")
			if !ok {
				fmt.Println("usage: insert <rid> <content>")
				continue
			}
			rid, err := strconv.ParseUint(ridStr, 10, 64)
			if err != nil {
				fmt.Println("bad rid:", err)
				continue
			}
			if err := store.Insert(ctx, rid, []byte(content)); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "get":
			rid, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				fmt.Println("bad rid:", err)
				continue
			}
			content, err := store.Get(ctx, rid)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%d: %s\n", rid, content)
			}
		case "delete":
			rid, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				fmt.Println("bad rid:", err)
				continue
			}
			if err := store.Delete(ctx, rid); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "search", "rawsearch":
			var recs []esdds.Record
			var err error
			if cmd == "search" {
				recs, err = store.SearchRecordsFiltered(ctx, []byte(rest), esdds.SearchFast)
			} else {
				recs, err = store.SearchRecords(ctx, []byte(rest), esdds.SearchFast)
			}
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, r := range recs {
				fmt.Printf("%d: %s\n", r.RID, r.Content)
			}
			fmt.Printf("%d hit(s)\n", len(recs))
		case "stats":
			st := store.Stats()
			fmt.Printf("record buckets %d (splits %d), index buckets %d (splits %d), IAMs %d\n",
				st.RecordBuckets, st.RecordSplits, st.IndexBuckets, st.IndexSplits, st.IAMs)
			printMetricsSummary(cluster)
		case "metrics":
			reg := cluster.Metrics()
			if reg == nil {
				fmt.Println("metrics disabled (run with -observe)")
				continue
			}
			fmt.Print(reg.WriteString())
		case "health":
			printHealth(cluster)
		case "sync":
			heal := cluster.SelfHealing()
			if heal == nil {
				fmt.Println("self-healing disabled (run with -self-heal <k>)")
				continue
			}
			if err := heal.Sync(ctx); err != nil {
				fmt.Println("error:", err)
			} else {
				at, seq := heal.LastSync()
				fmt.Printf("recovery point established: sync #%d at %s\n", seq, at.Format(time.RFC3339))
			}
		case "heal":
			heal := cluster.SelfHealing()
			if heal == nil {
				fmt.Println("self-healing disabled (run with -self-heal <k>)")
				continue
			}
			hctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			err := heal.AwaitHealthy(hctx)
			cancel()
			switch {
			case err == nil:
				fmt.Printf("cluster healthy (%d repairs completed)\n", heal.Repairs())
			default:
				fmt.Println("error:", err)
			}
		case "kill":
			id, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				fmt.Println("usage: kill <node>")
				continue
			}
			if err := cluster.KillNode(id); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("node %d killed\n", id)
			}
		default:
			fmt.Println("commands: load insert get delete search rawsearch stats metrics health sync heal kill quit")
		}
	}
}

// printMetricsSummary renders the headline numbers from the metrics
// registry: client-side op counts and search latency quantiles. The
// `metrics` command dumps the full exposition.
func printMetricsSummary(cluster *esdds.Cluster) {
	reg := cluster.Metrics()
	if reg == nil {
		return
	}
	fmt.Printf("ops: puts %d gets %d deletes %d searches %d (IAMs %d)\n",
		reg.CounterValue("cluster_puts_total"),
		reg.CounterValue("cluster_gets_total"),
		reg.CounterValue("cluster_deletes_total"),
		reg.CounterValue("cluster_searches_total"),
		reg.CounterValue("cluster_iams_total"))
	if s := reg.HistogramSnapshot("cluster_search_ns"); s.Count > 0 {
		fmt.Printf("search latency: p50 %s p90 %s p99 %s (n=%d)\n",
			time.Duration(s.P50), time.Duration(s.P90), time.Duration(s.P99), s.Count)
	}
}

// printHealth renders the full availability picture: detector verdicts,
// retry/breaker accounting, injected-fault counters, repair status, and
// the parity recovery point.
func printHealth(cluster *esdds.Cluster) {
	h := cluster.ClusterHealth()
	for _, n := range h.Nodes {
		line := fmt.Sprintf("node %d: state %s", n.Node, n.State)
		if n.State == "down" || n.State == "suspect" {
			line += fmt.Sprintf(" (consecutive failures %d, last error %q)", n.ConsecutiveFailures, n.LastError)
		}
		line += fmt.Sprintf(" | sends %d failures %d retries %d", n.Sends, n.Failures, n.Retries)
		if n.BreakerOpen {
			line += fmt.Sprintf(" breaker OPEN (trips %d)", n.BreakerTrips)
		} else if n.BreakerTrips > 0 {
			line += fmt.Sprintf(" breaker closed (trips %d)", n.BreakerTrips)
		}
		if n.ActiveProbes > 0 || n.PassiveSignals > 0 {
			line += fmt.Sprintf(" | probes %d passive %d", n.ActiveProbes, n.PassiveSignals)
		}
		if f := n.Faults; f != nil {
			line += fmt.Sprintf(" | faults: dropped %d failed %d delayed %d duplicated %d blacked %d",
				f.Dropped, f.Failed, f.Delayed, f.Duplicated, f.Blacked)
		}
		if n.Durability != "" {
			line += " | durability " + n.Durability
		}
		fmt.Println(line)
	}
	if m := h.Migrations; m.Started > 0 {
		line := fmt.Sprintf("migrations: %d started, %d committed, %d aborted", m.Started, m.Committed, m.Aborted)
		if m.InFlight > 0 {
			line += fmt.Sprintf(", %d IN FLIGHT (buckets frozen until resumed)", m.InFlight)
		}
		if m.Resumed > 0 {
			line += fmt.Sprintf(", %d resumed this process", m.Resumed)
		}
		fmt.Println(line)
	}
	if !h.SelfHealing {
		fmt.Println("self-healing: off")
		return
	}
	switch {
	case h.Alarm != "":
		fmt.Println("ALARM:", h.Alarm)
	case len(h.Down) > 0:
		fmt.Printf("repair in progress: nodes %v down\n", h.Down)
	default:
		fmt.Printf("self-healing: healthy (%d repairs completed)\n", h.Repairs)
	}
	if h.SyncSeq == 0 {
		fmt.Println("recovery point: never synced — run `sync`")
	} else {
		fmt.Printf("recovery point: sync #%d at %s\n", h.SyncSeq, h.LastSync.Format(time.RFC3339))
	}
	if h.JournalCap > 0 {
		line := fmt.Sprintf("repair journal: %d/%d records", h.JournalLen, h.JournalCap)
		if h.JournalDropped > 0 {
			line += fmt.Sprintf(" (%d oldest dropped)", h.JournalDropped)
		}
		fmt.Println(line)
	}
}

func loadFile(ctx context.Context, store *esdds.Store, file string, limit int) {
	f, err := os.Open(file)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer f.Close()
	entries, err := phonebook.Read(f)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if limit > 0 && limit < len(entries) {
		entries = entries[:limit]
	}
	for _, e := range entries {
		if err := store.Insert(ctx, e.RID(), []byte(e.Name)); err != nil {
			fmt.Println("error at", e.Phone, ":", err)
			return
		}
	}
	fmt.Printf("loaded %d records\n", len(entries))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esdds-cli:", err)
	os.Exit(1)
}
