// Command esdds-node runs one storage node of the encrypted searchable
// SDDS as a TCP daemon. Nodes hold no key material: they store sealed
// records and opaque index pieces, and execute substring matching on
// ciphertext.
//
// A 3-node cluster on one machine:
//
//	esdds-node -id 0 -listen 127.0.0.1:7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	esdds-node -id 1 -listen 127.0.0.1:7002 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	esdds-node -id 2 -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//
// The -peers list is positional: entry i is node i's address; every node
// must receive the same list so LH* forwarding can reach any bucket.
//
// Every node answers health probes (the ping opcode) automatically, so
// a client opened with esdds.WithSelfHealing can detect daemon failures
// and serve degraded searches; automatic restore onto a replacement
// daemon requires restarting it under the dead node's ID and address.
//
// With -data-dir the node is durable: every mutation is journaled to a
// checksummed write-ahead log (with periodic checkpoints) before it is
// applied, and a restarted daemon replays checkpoint+journal to rejoin
// already whole — no parity restore needed. SIGINT/SIGTERM shut down
// gracefully: the journal is flushed and a final checkpoint written.
//
// With -metrics-addr the node also serves an observability endpoint:
// GET /metrics returns the text exposition of every counter, gauge,
// and latency histogram (per-opcode timings, search-path counters, WAL
// durability work, transport byte accounting), /debug/vars the same
// registry as expvar JSON under "esdds", and /debug/pprof/ the standard
// Go profiler.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/sdds"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	var (
		id     = flag.Int("id", 0, "this node's ID (index into -peers)")
		listen = flag.String("listen", "127.0.0.1:7001", "listen address")
		peers  = flag.String("peers", "", "comma-separated addresses of ALL nodes, in ID order")

		retries   = flag.Int("retries", 4, "max delivery attempts for server-to-server forwards (1 disables retry)")
		retryBase = flag.Duration("retry-base", 10*time.Millisecond, "first retry backoff; doubles per retry")
		retryMax  = flag.Duration("retry-max", time.Second, "backoff cap")
		breaker   = flag.Int("breaker", 8, "consecutive failures opening a peer's circuit breaker (0 disables)")
		cooldown  = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker rejects forwards")

		shed       = flag.Bool("shed", false, "enable adaptive admission control: past saturation, reject excess requests with a retry-after hint instead of queueing without bound")
		linearScan = flag.Bool("linear-scan", false, "disable the posting index; serve searches by full linear scan")
		dataDir    = flag.String("data-dir", "", "directory for the node's write-ahead log and checkpoints (empty: in-memory only)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (empty: disabled)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "esdds-node: -peers is required")
		os.Exit(2)
	}
	if *id < 0 || *id >= len(addrs) {
		fmt.Fprintf(os.Stderr, "esdds-node: -id %d out of range for %d peers\n", *id, len(addrs))
		os.Exit(2)
	}
	ids := make([]transport.NodeID, len(addrs))
	dir := make(map[transport.NodeID]string, len(addrs))
	for i, a := range addrs {
		ids[i] = transport.NodeID(i)
		dir[transport.NodeID(i)] = strings.TrimSpace(a)
	}
	place, err := sdds.NewPlacement(ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esdds-node:", err)
		os.Exit(1)
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}

	peerTCP := transport.NewTCP(dir)
	defer peerTCP.Close()
	peerTCP.Instrument(reg)
	var peerTr transport.Transport = peerTCP
	if *retries > 1 || *breaker > 0 {
		retry := transport.NewRetry(peerTCP, transport.RetryPolicy{
			MaxAttempts:      *retries,
			BaseDelay:        *retryBase,
			MaxDelay:         *retryMax,
			Multiplier:       2,
			Jitter:           0.2,
			FailureThreshold: *breaker,
			Cooldown:         *cooldown,
		}, int64(*id))
		retry.Instrument(reg)
		peerTr = retry
	}

	node := sdds.NewNode(transport.NodeID(*id), peerTr, place)
	node.Instrument(reg)
	if *linearScan {
		node.DisablePostingIndex()
	}
	if *dataDir != "" {
		st, err := wal.Open(wal.OSFS{}, *dataDir, wal.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esdds-node: opening data dir:", err)
			os.Exit(1)
		}
		st.Instrument(reg)
		switch out, err := node.AttachStore(st); out {
		case wal.OutcomeCorrupt:
			// Loud, never silent: the node serves empty and waits for a
			// guardian restore (which re-establishes durability).
			fmt.Fprintf(os.Stderr, "esdds-node: local state in %s failed verification (%v); starting empty, needs parity restore\n", *dataDir, err)
		case wal.OutcomeRecovered:
			fmt.Printf("esdds-node %d recovered local state from %s (seq %d)\n", *id, *dataDir, st.Seq())
		default:
			fmt.Printf("esdds-node %d starting fresh journal in %s\n", *id, *dataDir)
		}
		defer func() {
			if err := node.CloseStore(); err != nil {
				fmt.Fprintln(os.Stderr, "esdds-node: closing store:", err)
			}
		}()
	}
	srv := transport.NewServer(node.Handler())
	if *shed {
		sh := transport.NewShedder(transport.ShedPolicy{Classify: sdds.OpPriority})
		sh.Instrument(reg)
		srv.SetShedder(sh)
	}
	srv.Instrument(reg)

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esdds-node:", err)
		os.Exit(1)
	}
	fmt.Printf("esdds-node %d listening on %s (%d-node cluster)\n", *id, lis.Addr(), len(addrs))

	if reg != nil {
		reg.PublishExpvar("esdds")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esdds-node: metrics listener:", err)
			os.Exit(1)
		}
		defer mlis.Close()
		go http.Serve(mlis, mux) //nolint:errcheck // dies with the process
		fmt.Printf("esdds-node %d metrics on http://%s/metrics (pprof under /debug/pprof/)\n", *id, mlis.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("esdds-node: shutting down")
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "esdds-node:", err)
			if *dataDir != "" {
				node.CloseStore() //nolint:errcheck // already failing
			}
			os.Exit(1)
		}
	}
}
