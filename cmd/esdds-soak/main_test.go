package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadgen"
)

// soakArgs is the scaled-down scenario the unit tests run: a real
// in-process TCP cluster, small enough for seconds, large enough to
// force LH* growth through several splits.
func soakArgs(out string, extra ...string) []string {
	args := []string{
		"-profile", "smoke",
		"-cluster", "local",
		"-ops", "2500",
		"-rate", "1500",
		"-bucket-cap", "64",
		"-out", out,
	}
	return append(args, extra...)
}

// TestSoakPassingRun: the acceptance scenario's passing half — a clean
// run must exit 0, satisfy every default gate (including ≥3 splits and
// the zero-loss audit), and write the report under its profile.
func TestSoakPassingRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	var stdout, stderr bytes.Buffer
	if code := run(soakArgs(out), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	f, err := loadgen.LoadBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Profiles["smoke"]
	if rep == nil {
		t.Fatalf("no smoke profile written; stdout:\n%s", stdout.String())
	}
	if rep.Cluster.RecordSplits < 3 {
		t.Fatalf("only %d record splits; soak must drive growth", rep.Cluster.RecordSplits)
	}
	if rep.Audit == nil || !rep.Audit.Clean() || rep.Audit.Checked == 0 {
		t.Fatalf("audit not clean: %+v", rep.Audit)
	}
	if len(rep.Timeline) == 0 || len(rep.Gates) == 0 {
		t.Fatalf("report missing timeline (%d) or gates (%d)", len(rep.Timeline), len(rep.Gates))
	}
	for _, k := range []string{"insert", "search"} {
		st, ok := rep.Ops[k]
		if !ok || st.P50Ns <= 0 || st.P99Ns < st.P50Ns {
			t.Fatalf("per-op quantiles malformed for %s: %+v", k, st)
		}
	}
	if !strings.Contains(stdout.String(), "SOAK PASSED") {
		t.Fatalf("stdout lacks verdict:\n%s", stdout.String())
	}
}

// TestSoakFailingRun: the acceptance scenario's failing half — an
// impossible gate must fail the run (exit 1), print a diff against the
// previous entry, and leave the baseline file untouched.
func TestSoakFailingRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	// First: a passing run to establish the baseline.
	var quiet bytes.Buffer
	if code := run(soakArgs(out), &quiet, &quiet); code != 0 {
		t.Fatalf("baseline run failed (%d):\n%s", code, quiet.String())
	}
	baseline, err := loadgen.LoadBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	baseWhen := baseline.Profiles["smoke"].When

	var stdout, stderr bytes.Buffer
	code := run(soakArgs(out, "-gate", "search.p99 < 1ns"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (gate failure)\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	for _, want := range []string{"SOAK FAILED", "FAIL: search.p99", "previous", "search.p99"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("failure output lacks %q:\n%s", want, stdout.String())
		}
	}
	after, err := loadgen.LoadBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if after.Profiles["smoke"].When != baseWhen {
		t.Fatal("failing run overwrote the baseline BENCH entry")
	}
}

// TestSoakGrowthChaos: the crash-safety scenario at test scale — a
// killable in-process cluster under load with a node kill every 500ms.
// The run must stay lossless, log at least one repair, and end with
// zero migrations in flight.
func TestSoakGrowthChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-profile", "growth-chaos",
		"-cluster", "mem",
		"-ops", "6000",
		"-rate", "1500",
		"-bucket-cap", "64",
		"-kill-every", "500ms",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	f, err := loadgen.LoadBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Profiles["growth-chaos"]
	if rep == nil {
		t.Fatalf("no growth-chaos profile written; stdout:\n%s", stdout.String())
	}
	if rep.Audit == nil || !rep.Audit.Clean() || rep.Audit.Checked == 0 {
		t.Fatalf("audit not clean under chaos: %+v", rep.Audit)
	}
	if rep.Cluster.Repairs == 0 {
		t.Fatalf("no repairs logged; the chaos killer never landed\nstdout:\n%s", stdout.String())
	}
	if rep.Cluster.MigStarted == 0 || rep.Cluster.MigInFlight != 0 {
		t.Fatalf("migration ledger after chaos: %+v", rep.Cluster)
	}
	if !strings.Contains(stdout.String(), "SOAK PASSED") {
		t.Fatalf("stdout lacks verdict:\n%s", stdout.String())
	}
}

// TestSoakChaosRequiresMemCluster: chaos profiles refuse cluster modes
// whose nodes the harness cannot kill.
func TestSoakChaosRequiresMemCluster(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-profile", "growth-chaos", "-cluster", "local"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-cluster mem") {
		t.Fatalf("error does not point at -cluster mem:\n%s", stderr.String())
	}
}

// TestSoakUsageErrors: bad invocations are exit code 2, not crashes.
func TestSoakUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{"-profile", "nope"},
		{"-cluster", "nope"},
		{"-mix", "banana"},
		{"-search-mode", "telepathic"},
		{"-gate", "search.p99 <"},
		{"-bogus-flag"},
	} {
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestSoakProcCluster is the full multi-process path: build the real
// binaries, spawn esdds-node daemons, and drive the soak over TCP
// between processes.
func TestSoakProcCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak in -short mode")
	}
	bin := t.TempDir()
	nodeBin := filepath.Join(bin, "esdds-node")
	build := exec.Command("go", "build", "-o", nodeBin, "repro/cmd/esdds-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building esdds-node: %v\n%s", err, out)
	}
	out := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	var stdout, stderr bytes.Buffer
	code := run(soakArgs(out,
		"-cluster", "proc",
		"-node-bin", nodeBin,
		"-proc-dir", filepath.Join(bin, "logs"),
	), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	f, err := loadgen.LoadBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Profiles["smoke"]
	if rep == nil || rep.Config.Cluster != "proc" {
		t.Fatalf("proc report missing: %+v", rep)
	}
	// The daemons' own /metrics endpoints must have been scraped.
	found := false
	for k := range rep.NodeMetrics {
		if strings.HasPrefix(k, "node0.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no scraped daemon metrics in report (keys: %d)", len(rep.NodeMetrics))
	}
	if rep.Cluster.NodesUsed < 2 {
		t.Fatalf("file reached %d daemons, want spread", rep.Cluster.NodesUsed)
	}
}
