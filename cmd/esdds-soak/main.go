// Command esdds-soak is the production-traffic soak harness: it drives
// a real TCP cluster (in-process servers or spawned esdds-node
// daemons) through LH* growth from a single starting bucket under an
// open-loop load of phonebook traffic — Poisson arrivals at a fixed
// rate, a configurable insert/search/delete mix, zipfian query
// popularity — then audits the cluster for record loss and holds the
// measurements to declarative SLO gates.
//
//	esdds-soak -profile smoke -cluster proc -node-bin bin/esdds-node
//	esdds-soak -profile full -gate 'search.p99 < 250ms'
//
// The run writes (merges) its report into BENCH_cluster.json under its
// profile name: client-side p50/p90/p99 per op type, split/IAM/retry
// counters, a per-second latency+growth timeline, the audit verdict,
// and every gate outcome. Gates compare against absolute bounds
// ("search.p99 < 250ms", "error_rate == 0", "loss == 0") or against
// the previous BENCH entry ("search.p99 <= prev*1.5"); any failing
// gate — or a non-clean audit — fails the run with exit code 1 and a
// diff against the previous report, and leaves the baseline file
// untouched. Exit code 2 is an infrastructure error.
//
// Latency accounting is coordinated-omission-safe: each op's latency
// is measured from its *scheduled* Poisson arrival, so an overloaded
// cluster shows up as inflated tail latencies (and, past the queue
// bound, counted sheds) instead of a silently reduced offered rate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/esdds"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// profile is a named soak scenario: the knobs plus its default gates.
type profile struct {
	nodes       int
	ops         int
	rate        float64
	mix         loadgen.Mix
	bucketCap   int
	maxInFlight int
	searchMode  string
	zipfS       float64
	queryPool   int
	// overload runs the cluster with the full overload-control stack
	// (admission control, retry budgets, hedged reads, patient failure
	// detection — esdds.OverloadClusterOptions) and, in proc mode,
	// passes -shed to every daemon.
	overload bool
	// chaos kills one node every killEvery while the load runs (waiting
	// for the self-healing repair between kills), then drains any
	// migrations the kills left in flight before the audit. Requires
	// -cluster mem: only in-process memory nodes can be killed and
	// revived by the harness.
	chaos     bool
	killEvery time.Duration
	gates     []string
}

// profiles: "smoke" is the ~30s CI scenario (3 nodes, ~96k offered
// records through dozens of splits); "full" is the million-record soak
// the ROADMAP's heavy-traffic claim is measured by. The smoke rate and
// gates are sized to the pooled multiplexed transport: the
// request-per-turn wire shed ~29% of a 2000/s offered load (1406/s
// through), while the multiplexed wire sustains ~2.5k/s on the same
// single-CPU host — at which point CPU profiles show the bottleneck has
// moved off the wire entirely (cipher work, posting-index maintenance,
// GC). The offered*0.55 floor (2200/s at the profile's rate 4000) locks
// in that ~1.6x gain with headroom for machine noise, and scales when
// -rate is overridden; rate 4000 deliberately over-saturates so
// throughput measures capacity, which is why the latency gates are
// loose absolute bounds (queue wait dominates p99 under saturation, so
// a prev-relative ratchet would only measure the offered-rate gap).
var profiles = map[string]profile{
	"smoke": {
		nodes: 3, ops: 120000, rate: 4000,
		mix:       loadgen.Mix{InsertPct: 80, SearchPct: 15, DeletePct: 5},
		// 256 in-flight ops keep the multiplexed connections' pipelines
		// full; the old request-per-turn wire saturated long before this.
		bucketCap: 512, maxInFlight: 256, searchMode: "fast",
		zipfS: 1.1, queryPool: 512,
		gates: []string{
			"error_rate == 0",
			"loss == 0",
			"ghosts == 0",
			"search_misses == 0",
			"audit_errors == 0",
			"record_splits >= 3",
			"search.p99 < 3s",
			"insert.p99 < 5s",
			"throughput >= offered*0.55",
		},
	},
	// "overload" deliberately offers ~3x the smoke profile's measured
	// capacity (~2.5k/s on a single-CPU host) to prove graceful
	// degradation, not to measure capacity: the cluster must keep at
	// least the smoke gate's goodput floor (2200/s * 0.7 = 1540/s of
	// completed work), the retry budget must hold mean attempts per op
	// under 1.5 (no amplification storm), every op must either succeed
	// or be cleanly rejected as overload (error_rate == 0 — rejections
	// are counted separately), the audit must stay lossless, and the
	// failure detector must not read saturation as death (repairs == 0).
	// Latency gates are deliberately loose: under 3x overload the p99 of
	// *admitted* ops is queue-bounded by admission control, and the gate
	// only asserts it stays an order of magnitude inside the 30s op
	// timeout (degradation, not collapse).
	"overload": {
		nodes: 3, ops: 180000, rate: 7500,
		mix:       loadgen.Mix{InsertPct: 70, SearchPct: 25, DeletePct: 5},
		bucketCap: 512, maxInFlight: 768, searchMode: "fast",
		zipfS: 1.1, queryPool: 512, overload: true,
		gates: []string{
			"goodput >= 1540",
			"attempts_per_op <= 1.5",
			"error_rate == 0",
			"loss == 0",
			"ghosts == 0",
			"search_misses == 0",
			"audit_errors == 0",
			"repairs == 0",
			"search.p99 < 10s",
			"insert.p99 < 15s",
		},
	},
	// "growth-chaos" is the crash-safety scenario for file growth: a
	// durable in-process cluster is driven through dozens of splits and
	// merges while the harness repeatedly kills a node mid-run and lets
	// the self-healing supervisor revive it. A kill that lands inside a
	// split/merge leaves that handoff journalled in-flight; the
	// supervisor must roll it forward when the node returns, and the
	// full read-back audit holds acknowledged-record loss at zero. Ops
	// naturally error while a node is dead (no error_rate gate) — the
	// contract is that nothing *acknowledged* is lost or duplicated and
	// no handoff is left dangling.
	"growth-chaos": {
		nodes: 3, ops: 60000, rate: 3000,
		mix:       loadgen.Mix{InsertPct: 70, SearchPct: 20, DeletePct: 10},
		bucketCap: 256, maxInFlight: 256, searchMode: "fast",
		zipfS: 1.1, queryPool: 512,
		chaos: true, killEvery: 4 * time.Second,
		gates: []string{
			"loss == 0",
			"ghosts == 0",
			"search_misses == 0",
			"audit_errors == 0",
			"record_splits >= 3",
			"repairs >= 1",
			"migrations_started >= 3",
			"migrations_in_flight == 0",
		},
	},
	"full": {
		nodes: 16, ops: 2500000, rate: 5000,
		mix:       loadgen.Mix{InsertPct: 50, SearchPct: 40, DeletePct: 10},
		bucketCap: 128, maxInFlight: 128, searchMode: "fast",
		zipfS: 1.1, queryPool: 2048,
		gates: []string{
			"error_rate == 0",
			"loss == 0",
			"ghosts == 0",
			"search_misses == 0",
			"audit_errors == 0",
			"record_splits >= 3",
			"search.p99 < 2s",
			"insert.p99 < 2s",
			"search.p99 <= prev*1.5",
			"insert.p99 <= prev*1.5",
			"throughput >= prev*0.67",
		},
	},
}

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, "; ") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

func parseSearchMode(s string) (esdds.SearchMode, error) {
	switch strings.ToLower(s) {
	case "fast":
		return esdds.SearchFast, nil
	case "verified":
		return esdds.SearchVerified, nil
	case "exact":
		return esdds.SearchExact, nil
	}
	return 0, fmt.Errorf("unknown search mode %q (fast|verified|exact)", s)
}

// storeTarget adapts esdds.Store to the loadgen Target surface with a
// fixed search mode.
type storeTarget struct {
	store *esdds.Store
	mode  esdds.SearchMode
}

func (t *storeTarget) Insert(ctx context.Context, rid uint64, content []byte) error {
	return t.store.Insert(ctx, rid, content)
}

func (t *storeTarget) Search(ctx context.Context, query []byte) ([]uint64, error) {
	return t.store.Search(ctx, query, t.mode)
}

func (t *storeTarget) Delete(ctx context.Context, rid uint64) error {
	err := t.store.Delete(ctx, rid)
	if errors.Is(err, esdds.ErrNotFound) {
		return loadgen.ErrNotFound
	}
	return err
}

func (t *storeTarget) Get(ctx context.Context, rid uint64) ([]byte, error) {
	v, err := t.store.Get(ctx, rid)
	if errors.Is(err, esdds.ErrNotFound) {
		return nil, loadgen.ErrNotFound
	}
	return v, err
}

// soakGCPercent pins GC pacing for the soak client and (via proc mode's
// spawn env) the daemons. Profiles of the saturated smoke run showed
// mark-assist work as a top client cost under the default GOGC=100;
// trading heap headroom for assist time is the standard server setting
// here, and pinning it keeps BENCH_cluster.json baselines comparable
// across hosts regardless of ambient GOGC.
const soakGCPercent = 300

func run(args []string, stdout, stderr io.Writer) int {
	debug.SetGCPercent(soakGCPercent)
	fs := flag.NewFlagSet("esdds-soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profileName = fs.String("profile", "smoke", "soak profile: smoke|overload|growth-chaos|full")
		clusterMode = fs.String("cluster", "local", "cluster mode: local (in-process TCP servers), proc (spawned esdds-node daemons), or mem (killable in-process memory nodes — required by chaos profiles)")
		nodeBin     = fs.String("node-bin", "", "esdds-node binary for -cluster proc (default: look up in PATH)")
		procDir     = fs.String("proc-dir", "", "directory for daemon logs in proc mode (default: a temp dir)")

		nodes       = fs.Int("nodes", 0, "override: cluster size")
		ops         = fs.Int("ops", 0, "override: total operations")
		rate        = fs.Float64("rate", 0, "override: offered rate, ops/second")
		mixStr      = fs.String("mix", "", "override: insert/search/delete percentages, e.g. 70/25/5")
		seed        = fs.Int64("seed", 1, "deterministic seed for the op stream, arrival jitter, and retry jitter")
		bucketCap   = fs.Int("bucket-cap", 0, "override: LH* max bucket load (smaller = more splits)")
		maxInFlight = fs.Int("max-inflight", 0, "override: bound on concurrently executing ops")
		searchMode  = fs.String("search-mode", "", "override: fast|verified|exact")
		zipfS       = fs.Float64("zipf-s", 0, "override: zipf exponent of query popularity")
		queryPool   = fs.Int("query-pool", 0, "override: distinct queries in the popularity pool")
		opTimeout   = fs.Duration("op-timeout", 30*time.Second, "per-operation deadline")
		killEvery   = fs.Duration("kill-every", 0, "override: interval between chaos node kills (chaos profiles)")

		out            = fs.String("out", "BENCH_cluster.json", "BENCH file to merge the report into")
		noDefaultGates = fs.Bool("no-default-gates", false, "drop the profile's built-in gates")
		auditReaders   = fs.Int("audit-concurrency", 16, "parallel readers for the post-soak audit")
		cpuProfile     = fs.String("cpuprofile", "", "write the load generator's CPU profile here (the client side of the soak; daemons expose /debug/pprof)")
	)
	var extraGates stringList
	fs.Var(&extraGates, "gate", "additional SLO gate, e.g. 'search.p99 < 250ms' (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	prof, ok := profiles[*profileName]
	if !ok {
		fmt.Fprintf(stderr, "esdds-soak: unknown profile %q\n", *profileName)
		return 2
	}
	if *nodes > 0 {
		prof.nodes = *nodes
	}
	if *ops > 0 {
		prof.ops = *ops
	}
	if *rate > 0 {
		prof.rate = *rate
	}
	if *mixStr != "" {
		m, err := loadgen.ParseMix(*mixStr)
		if err != nil {
			fmt.Fprintln(stderr, "esdds-soak:", err)
			return 2
		}
		prof.mix = m
	}
	if *bucketCap > 0 {
		prof.bucketCap = *bucketCap
	}
	if *maxInFlight > 0 {
		prof.maxInFlight = *maxInFlight
	}
	if *searchMode != "" {
		prof.searchMode = *searchMode
	}
	if *zipfS > 0 {
		prof.zipfS = *zipfS
	}
	if *queryPool > 0 {
		prof.queryPool = *queryPool
	}
	if *killEvery > 0 {
		prof.killEvery = *killEvery
	}
	mode, err := parseSearchMode(prof.searchMode)
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak:", err)
		return 2
	}

	gateExprs := append([]string(nil), extraGates...)
	if !*noDefaultGates {
		gateExprs = append(append([]string(nil), prof.gates...), gateExprs...)
	}
	gates, err := loadgen.ParseGates(gateExprs)
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// --- cluster -----------------------------------------------------
	var (
		cluster  *esdds.Cluster
		nodeURLs map[int]string // proc mode: node id -> metrics base URL
		teardown func()
	)
	opts := esdds.SoakClusterOptions(*seed)
	var nodeArgs []string
	if prof.overload {
		opts = esdds.OverloadClusterOptions(*seed)
		nodeArgs = []string{"-shed"}
	}
	if prof.chaos && *clusterMode != "mem" {
		fmt.Fprintf(stderr, "esdds-soak: profile %q kills nodes mid-run and needs -cluster mem\n", *profileName)
		return 2
	}
	switch *clusterMode {
	case "local":
		cluster, err = esdds.StartLocalTCPCluster(prof.nodes, opts...)
		if err != nil {
			fmt.Fprintln(stderr, "esdds-soak: starting local cluster:", err)
			return 2
		}
		teardown = func() { cluster.Close() } //nolint:errcheck // exiting
	case "mem":
		dir, derr := os.MkdirTemp("", "esdds-soak-mem-")
		if derr != nil {
			fmt.Fprintln(stderr, "esdds-soak: data dir:", derr)
			return 2
		}
		memOpts := append(append([]esdds.ClusterOption(nil), opts...), esdds.WithDataDir(dir))
		if prof.chaos {
			// Durable nodes + self-healing: a killed node is revived from
			// its own journal and the supervisor rolls any interrupted
			// split/merge handoff forward as part of finishing the repair.
			memOpts = append(memOpts, esdds.WithSelfHealing(esdds.SelfHealingConfig{
				Parity:        1,
				ProbeInterval: 20 * time.Millisecond,
				ProbeTimeout:  time.Second,
				DownAfter:     3,
				UpAfter:       1,
				Debounce:      100 * time.Millisecond,
				RepairBackoff: 250 * time.Millisecond,
			}))
		}
		cluster = esdds.NewMemoryCluster(prof.nodes, memOpts...)
		teardown = func() {
			cluster.Close() //nolint:errcheck // exiting
			os.RemoveAll(dir)
		}
	case "proc":
		pc, err := startProcCluster(ctx, prof.nodes, *nodeBin, *procDir, nodeArgs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "esdds-soak: starting daemon cluster:", err)
			return 2
		}
		cluster, err = esdds.DialCluster(pc.addrs, opts...)
		if err != nil {
			pc.stop()
			fmt.Fprintln(stderr, "esdds-soak: dialing daemon cluster:", err)
			return 2
		}
		nodeURLs = pc.metricsURLs
		teardown = func() {
			cluster.Close() //nolint:errcheck // exiting
			pc.stop()
		}
		fmt.Fprintf(stdout, "spawned %d esdds-node daemons (logs under %s)\n", prof.nodes, pc.logDir)
	default:
		fmt.Fprintf(stderr, "esdds-soak: unknown cluster mode %q\n", *clusterMode)
		return 2
	}
	defer teardown()

	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("soak"), esdds.Config{
		ChunkSize:     4,
		MaxBucketLoad: prof.bucketCap,
	}, nil)
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak: opening store:", err)
		return 2
	}
	target := &storeTarget{store: store, mode: mode}

	// --- load --------------------------------------------------------
	minQ := store.MinQueryLenFor(mode)
	if minQ < 7 {
		minQ = 7
	}
	stream, err := loadgen.NewStream(loadgen.StreamConfig{
		Seed: *seed, Ops: prof.ops, Mix: prof.mix,
		QueryPool: prof.queryPool, ZipfS: prof.zipfS, MinQueryLen: minQ,
	})
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak:", err)
		return 2
	}
	runner, err := loadgen.NewRunner(target, loadgen.RunnerConfig{
		Rate: prof.rate, MaxInFlight: prof.maxInFlight,
		Seed: *seed, OpTimeout: *opTimeout,
		// Server-side overload rejections (surfaced once the retry budget
		// gives up) are backpressure, not failures: they are accounted as
		// rejected ops, distinct from both errors and client-queue sheds.
		IsRejected: func(err error) bool { return errors.Is(err, transport.ErrOverloaded) },
	})
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak:", err)
		return 2
	}

	fmt.Fprintf(stdout, "soak %q: %d nodes, %d ops @ %.0f/s, mix %s, seed %d, search %s, bucket cap %d\n",
		*profileName, prof.nodes, prof.ops, prof.rate, prof.mix, *seed, prof.searchMode, prof.bucketCap)

	growth := watchGrowth(store)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "esdds-soak:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "esdds-soak:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	var chaos *chaosKiller
	if prof.chaos {
		chaos = startChaos(ctx, cluster, prof.killEvery, stdout)
	}
	start := time.Now()
	res, err := runner.Run(ctx, stream)
	if *cpuProfile != "" {
		pprof.StopCPUProfile() // profile the load phase only, not the audit
	}
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak: run aborted:", err)
		return 2
	}
	samples := growth.stop()
	if chaos != nil {
		kills := chaos.stop()
		fmt.Fprintf(stdout, "chaos: %d node kills; awaiting final repair...\n", kills)
		hctx, hcancel := context.WithTimeout(ctx, time.Minute)
		err := cluster.SelfHealing().AwaitHealthy(hctx)
		hcancel()
		if err != nil {
			fmt.Fprintln(stderr, "esdds-soak: cluster never healed after chaos:", err)
			return 2
		}
		// Mop up any handoff a kill left journalled in-flight — the
		// audit (and the migrations_in_flight gate) run against the
		// settled cluster.
		if n, err := cluster.ResumeMigrations(ctx); err != nil {
			fmt.Fprintln(stderr, "esdds-soak: resuming migrations after chaos:", err)
			return 2
		} else if n > 0 {
			fmt.Fprintf(stdout, "chaos: resumed %d in-flight migrations\n", n)
		}
	}
	fmt.Fprintf(stdout, "load done in %.1fs: %d completions, %d rejected, %d shed; auditing...\n",
		res.Elapsed.Seconds(), totalCount(res), totalRejected(res), res.Shed)

	// Snapshot retry counters before the audit: attempts_per_op must
	// measure the load phase, not the read-back.
	retrySnap := snapshotRetry(cluster)

	// --- audit -------------------------------------------------------
	audit, err := loadgen.RunAudit(ctx, target, stream, runner.Ledger(), loadgen.AuditConfig{
		Concurrency: *auditReaders, MinQueryLen: minQ,
	})
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak: audit aborted:", err)
		return 2
	}

	// --- report ------------------------------------------------------
	rep := loadgen.BuildReport(*profileName, loadgen.RunConfig{
		Cluster: *clusterMode, Nodes: prof.nodes, Ops: prof.ops,
		Rate: prof.rate, Mix: prof.mix.String(), Seed: *seed,
		ZipfS: prof.zipfS, QueryPool: prof.queryPool,
		MaxInFlight: prof.maxInFlight, BucketCap: prof.bucketCap,
		SearchMode: prof.searchMode,
	}, res)
	rep.When = start.UTC().Format(time.RFC3339)
	rep.Growth = samples
	rep.Audit = audit
	rep.Cluster = clusterCounters(ctx, cluster, store, prof.nodes, retrySnap, stderr)
	rep.NodeMetrics = gatherNodeMetrics(ctx, cluster, nodeURLs, stderr)

	prevFile, err := loadgen.LoadBenchFile(*out)
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak:", err)
		return 2
	}
	prev := prevFile.Profiles[rep.Profile]

	outcomes, pass := loadgen.EvalGates(gates, rep, prev)
	rep.Gates = outcomes
	if !audit.Clean() {
		// Zero loss is not negotiable, gates or no gates.
		pass = false
	}

	printSummary(stdout, rep)
	for _, o := range outcomes {
		fmt.Fprintf(stdout, "gate %-28s %s\n", o.Expr, o.Detail)
	}
	if !audit.Clean() {
		fmt.Fprintf(stdout, "AUDIT FAILED: %s\n", audit.FirstProblem)
	}

	if !pass {
		fmt.Fprintf(stdout, "\nSOAK FAILED — diff vs previous %q entry in %s:\n%s", rep.Profile, *out, loadgen.DiffReports(prev, rep))
		fmt.Fprintf(stdout, "baseline %s left untouched\n", *out)
		return 1
	}
	prevFile.Put(rep)
	if err := loadgen.WriteBenchFile(*out, prevFile); err != nil {
		fmt.Fprintln(stderr, "esdds-soak: writing report:", err)
		return 2
	}
	fmt.Fprintf(stdout, "\nSOAK PASSED — report merged into %s (profile %q)\n", *out, rep.Profile)
	return 0
}

func totalCount(res *loadgen.RunResult) uint64 {
	var n uint64
	for _, st := range res.Ops {
		n += st.Count
	}
	return n
}

func totalRejected(res *loadgen.RunResult) uint64 {
	var n uint64
	for _, st := range res.Ops {
		n += st.Rejected
	}
	return n
}

// retrySnapshot is the load phase's retry accounting, captured before
// the audit adds its own sends.
type retrySnapshot struct {
	attempts, retries, failures uint64
}

func snapshotRetry(cluster *esdds.Cluster) retrySnapshot {
	var s retrySnapshot
	for _, ns := range cluster.RetryStats() {
		s.attempts += ns.Sends
		s.retries += ns.Retries
		s.failures += ns.Failures
	}
	return s
}

// chaosKiller kills one node per interval, round-robin, waiting for
// the self-healing repair to complete between kills so the parity
// budget (one failure at a time) is never exceeded by the harness
// itself.
type chaosKiller struct {
	stopCh chan struct{}
	doneCh chan struct{}
	kills  int
}

func startChaos(ctx context.Context, cluster *esdds.Cluster, every time.Duration, stdout io.Writer) *chaosKiller {
	k := &chaosKiller{stopCh: make(chan struct{}), doneCh: make(chan struct{})}
	heal := cluster.SelfHealing()
	n := cluster.Nodes()
	go func() {
		defer close(k.doneCh)
		victim := 0
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-k.stopCh:
				return
			case <-tick.C:
			}
			if err := cluster.KillNode(victim); err != nil {
				fmt.Fprintf(stdout, "chaos: killing node %d: %v\n", victim, err)
				continue
			}
			k.kills++
			fmt.Fprintf(stdout, "chaos: killed node %d (kill #%d)\n", victim, k.kills)
			victim = (victim + 1) % n
			hctx, cancel := context.WithTimeout(ctx, time.Minute)
			err := heal.AwaitHealthy(hctx)
			cancel()
			if err != nil {
				fmt.Fprintf(stdout, "chaos: repair wait failed, standing down: %v\n", err)
				return
			}
		}
	}()
	return k
}

// stop halts the killer and returns how many kills it landed.
func (k *chaosKiller) stop() int {
	close(k.stopCh)
	<-k.doneCh
	return k.kills
}

// growthWatcher samples the store's LH* state once per second.
type growthWatcher struct {
	mu      sync.Mutex
	samples []loadgen.GrowthSample
	done    chan struct{}
	stopped chan struct{}
}

func watchGrowth(store *esdds.Store) *growthWatcher {
	w := &growthWatcher{done: make(chan struct{}), stopped: make(chan struct{})}
	start := time.Now()
	sample := func() {
		st := store.Stats()
		w.mu.Lock()
		w.samples = append(w.samples, loadgen.GrowthSample{
			Offset:        int(time.Since(start) / time.Second),
			RecordBuckets: st.RecordBuckets,
			IndexBuckets:  st.IndexBuckets,
			Splits:        st.RecordSplits + st.IndexSplits,
			IAMs:          st.IAMs,
		})
		w.mu.Unlock()
	}
	go func() {
		defer close(w.stopped)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-w.done:
				sample()
				return
			}
		}
	}()
	return w
}

func (w *growthWatcher) stop() []loadgen.GrowthSample {
	close(w.done)
	<-w.stopped
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.samples
}

// clusterCounters gathers end-of-run cluster-side totals: the client's
// split/IAM accounting, the retry middleware's health counters, and the
// server-side bucket census for how many nodes the file reached.
func clusterCounters(ctx context.Context, cluster *esdds.Cluster, store *esdds.Store, nodes int, retry retrySnapshot, stderr io.Writer) loadgen.ClusterCounters {
	st := store.Stats()
	c := loadgen.ClusterCounters{
		Nodes:         nodes,
		RecordBuckets: st.RecordBuckets,
		IndexBuckets:  st.IndexBuckets,
		RecordSplits:  st.RecordSplits,
		IndexSplits:   st.IndexSplits,
		IAMs:          st.IAMs,
		RetryAttempts: retry.attempts,
		RetryRetries:  retry.retries,
		RetryFailures: retry.failures,
	}
	if sh := cluster.SelfHealing(); sh != nil {
		c.Repairs = sh.Repairs()
	}
	ms := cluster.MigrationStats()
	c.MigStarted = ms.Started
	c.MigCommitted = ms.Committed
	c.MigAborted = ms.Aborted
	c.MigResumed = ms.Resumed
	c.MigInFlight = ms.InFlight
	invCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	inv, err := store.Inventory(invCtx)
	if err != nil {
		fmt.Fprintln(stderr, "esdds-soak: bucket inventory failed:", err)
		return c
	}
	used := map[int]bool{}
	for _, b := range inv {
		used[b.Node] = true
	}
	c.NodesUsed = len(used)
	return c
}

// interestingMetric selects the scraped series worth persisting in the
// BENCH file (split/IAM/forward traffic, WAL work, retry health,
// overload-control activity).
func interestingMetric(name string) bool {
	for _, s := range []string{"split", "iam", "forward", "wal", "retry", "breaker", "shed", "expired", "hedge", "admits"} {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// gatherNodeMetrics folds the client registry and (in proc mode) every
// daemon's /metrics endpoint into one flat map.
func gatherNodeMetrics(ctx context.Context, cluster *esdds.Cluster, nodeURLs map[int]string, stderr io.Writer) map[string]float64 {
	out := map[string]float64{}
	if reg := cluster.Metrics(); reg != nil {
		vals, err := obs.ParseText(strings.NewReader(reg.WriteString()))
		if err == nil {
			for k, v := range vals {
				if interestingMetric(k) {
					out["client."+k] = v
				}
			}
		}
	}
	ids := make([]int, 0, len(nodeURLs))
	for id := range nodeURLs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		scrapeCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		vals, err := obs.Scrape(scrapeCtx, nodeURLs[id]+"/metrics")
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "esdds-soak: scraping node %d: %v\n", id, err)
			continue
		}
		for k, v := range vals {
			if interestingMetric(k) {
				out[fmt.Sprintf("node%d.%s", id, k)] = v
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// printSummary renders the human-readable run summary.
func printSummary(w io.Writer, rep *loadgen.Report) {
	fmt.Fprintf(w, "\n== soak %q: %d ops in %.1fs (%.0f/s, goodput %.0f/s), error rate %.4f, %d rejected, %d shed ==\n",
		rep.Profile, rep.Totals.Ops, rep.Totals.ElapsedSec, rep.Totals.Throughput,
		rep.Totals.Goodput, rep.Totals.ErrorRate, rep.Totals.Rejected, rep.Totals.Shed)
	kinds := make([]string, 0, len(rep.Ops))
	for k := range rep.Ops {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		st := rep.Ops[k]
		fmt.Fprintf(w, "%-7s n=%-8d p50=%-10v p90=%-10v p99=%-10v max=%-10v errs=%d\n",
			k, st.Count,
			time.Duration(st.P50Ns).Round(time.Microsecond),
			time.Duration(st.P90Ns).Round(time.Microsecond),
			time.Duration(st.P99Ns).Round(time.Microsecond),
			time.Duration(st.MaxNs).Round(time.Microsecond),
			st.Errors)
	}
	fmt.Fprintf(w, "growth: %d record buckets (%d splits), %d index buckets (%d splits), %d IAMs, %d/%d nodes used\n",
		rep.Cluster.RecordBuckets, rep.Cluster.RecordSplits,
		rep.Cluster.IndexBuckets, rep.Cluster.IndexSplits,
		rep.Cluster.IAMs, rep.Cluster.NodesUsed, rep.Cluster.Nodes)
	fmt.Fprintf(w, "retries: %d sends, %d retries, %d failed attempts\n",
		rep.Cluster.RetryAttempts, rep.Cluster.RetryRetries, rep.Cluster.RetryFailures)
	if rep.Cluster.MigStarted > 0 {
		fmt.Fprintf(w, "migrations: %d started, %d committed, %d aborted, %d resumed, %d in flight; %d repairs\n",
			rep.Cluster.MigStarted, rep.Cluster.MigCommitted, rep.Cluster.MigAborted,
			rep.Cluster.MigResumed, rep.Cluster.MigInFlight, rep.Cluster.Repairs)
	}
	if a := rep.Audit; a != nil {
		fmt.Fprintf(w, "audit: %d records read back, %d missing, %d corrupt, %d ghosts (of %d), %d search checks, %d misses, %d errors (%.1fs)\n",
			a.Checked, a.Missing, a.Corrupt, a.Ghosts, a.GhostsChecked,
			a.SearchChecks, a.SearchMisses, a.Errors, a.ElapsedSec)
	}
}
