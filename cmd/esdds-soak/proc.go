package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// procCluster is a set of spawned esdds-node daemons: the "real
// multi-process TCP cluster" mode of the soak.
type procCluster struct {
	procs       []*exec.Cmd
	addrs       map[int]string // node id -> listen address
	metricsURLs map[int]string // node id -> http://host:port
	logDir      string
	logs        []*os.File
}

// freeAddrs reserves n distinct loopback ports by binding and
// immediately releasing them — the standard (slightly racy, fine on a
// single host) port pre-allocation.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, nil
}

// startProcCluster spawns n esdds-node daemons on pre-allocated ports,
// waits for every main and metrics listener to come up, and returns
// the handles. extraArgs are appended to every daemon's command line
// (e.g. -shed for overload profiles). Daemon output goes to per-node
// log files under logDir.
func startProcCluster(ctx context.Context, n int, nodeBin, logDir string, extraArgs []string, stderr io.Writer) (*procCluster, error) {
	if nodeBin == "" {
		path, err := exec.LookPath("esdds-node")
		if err != nil {
			return nil, fmt.Errorf("esdds-node not in PATH; pass -node-bin (build it with `go build ./cmd/esdds-node`)")
		}
		nodeBin = path
	}
	if logDir == "" {
		dir, err := os.MkdirTemp("", "esdds-soak-*")
		if err != nil {
			return nil, err
		}
		logDir = dir
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		return nil, err
	}

	ports, err := freeAddrs(2 * n)
	if err != nil {
		return nil, err
	}
	mainAddrs, metricsAddrs := ports[:n], ports[n:]
	peers := strings.Join(mainAddrs, ",")

	pc := &procCluster{
		addrs:       make(map[int]string, n),
		metricsURLs: make(map[int]string, n),
		logDir:      logDir,
	}
	for i := 0; i < n; i++ {
		logF, err := os.Create(filepath.Join(logDir, "node-"+strconv.Itoa(i)+".log"))
		if err != nil {
			pc.stop()
			return nil, err
		}
		pc.logs = append(pc.logs, logF)
		args := []string{
			"-id", strconv.Itoa(i),
			"-listen", mainAddrs[i],
			"-peers", peers,
			"-metrics-addr", metricsAddrs[i],
		}
		args = append(args, extraArgs...)
		cmd := exec.CommandContext(ctx, nodeBin, args...)
		// Pin the daemons' GC pacing to the same setting the soak client
		// uses (see run): baselines stay comparable across hosts whose
		// ambient GOGC differs, and the soak measures the store, not the
		// collector's default assist pacing.
		cmd.Env = append(os.Environ(), "GOGC="+strconv.Itoa(soakGCPercent))
		cmd.Stdout = logF
		cmd.Stderr = logF
		cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
		if err := cmd.Start(); err != nil {
			pc.stop()
			return nil, fmt.Errorf("spawning node %d: %w", i, err)
		}
		pc.procs = append(pc.procs, cmd)
		pc.addrs[i] = mainAddrs[i]
		pc.metricsURLs[i] = "http://" + metricsAddrs[i]
	}

	// Readiness: every daemon must accept on both its listeners.
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; i < n; i++ {
		for _, addr := range []string{mainAddrs[i], metricsAddrs[i]} {
			if err := waitListening(ctx, addr, deadline); err != nil {
				fmt.Fprintf(stderr, "esdds-soak: node %d not ready on %s (see %s)\n",
					i, addr, filepath.Join(logDir, "node-"+strconv.Itoa(i)+".log"))
				pc.stop()
				return nil, err
			}
		}
	}
	return pc, nil
}

func waitListening(ctx context.Context, addr string, deadline time.Time) error {
	for {
		conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout waiting for %s: %w", addr, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// stop terminates every daemon (SIGTERM, then kill after a grace
// period) and closes the log files.
func (pc *procCluster) stop() {
	for _, cmd := range pc.procs {
		if cmd.Process != nil {
			cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck // best-effort
		}
	}
	grace := time.AfterFunc(5*time.Second, func() {
		for _, cmd := range pc.procs {
			if cmd.Process != nil {
				cmd.Process.Kill() //nolint:errcheck // last resort
			}
		}
	})
	for _, cmd := range pc.procs {
		cmd.Wait() //nolint:errcheck // exit status is expected to be the signal
	}
	grace.Stop()
	for _, f := range pc.logs {
		f.Close()
	}
}
