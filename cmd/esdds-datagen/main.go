// Command esdds-datagen writes a synthetic SF-directory file in the
// paper's Figure-4 layout (NAME%%%…PHONE$$, one record per line).
//
// Usage:
//
//	esdds-datagen -n 282965 -seed 20060403 -o directory.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/phonebook"
)

func main() {
	var (
		n    = flag.Int("n", experiments.PaperCorpusSize, "number of entries")
		seed = flag.Int64("seed", experiments.DefaultSeed, "generator seed")
		out  = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	entries := phonebook.Generate(*n, *seed)
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esdds-datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := phonebook.Write(w, entries); err != nil {
		fmt.Fprintln(os.Stderr, "esdds-datagen:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", len(entries), *out)
	}
}
