// Command esdds-repro regenerates every table and figure of the paper's
// evaluation section on the synthetic SF-directory corpus.
//
// Usage:
//
//	esdds-repro -all                 # every table and figure
//	esdds-repro -table 3             # one table
//	esdds-repro -figure 5            # the encoding-assignment figure
//	esdds-repro -randomness          # §6 randomness-battery extension
//	esdds-repro -n 282965 -all       # full paper-scale corpus
//
// The absolute χ² and false-positive numbers differ from the paper's
// (the original SF White Pages directory is proprietary; this corpus is
// a synthetic stand-in with the same statistical shape), but every
// qualitative relationship the paper reports — orderings, trends, and
// crossovers — reproduces. See EXPERIMENTS.md for the side-by-side
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cipherx"
	"repro/internal/experiments"
)

func main() {
	var (
		n          = flag.Int("n", 50000, "corpus size (paper: 282965)")
		seed       = flag.Int64("seed", experiments.DefaultSeed, "corpus seed")
		sampleN    = flag.Int("sample", 1000, "sample size for Tables 4/5 and Figure 5")
		table      = flag.Int("table", 0, "regenerate one table (1-5)")
		figure     = flag.Int("figure", 0, "regenerate one figure (5)")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		randomness = flag.Bool("randomness", false, "run the randomness-battery extension")
		storage    = flag.Bool("storage", false, "run the §2.5 storage/accuracy trade-off ablation")
	)
	flag.Parse()
	if !*all && *table == 0 && *figure == 0 && !*randomness && !*storage {
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("generating corpus: %d entries (seed %d)\n", *n, *seed)
	start := time.Now()
	corpus := experiments.NewCorpus(*n, *seed)
	fmt.Printf("corpus ready in %v; alphabet %q\n\n", time.Since(start).Round(time.Millisecond), corpus.Alphabet)

	sample := corpus.Sample(*sampleN, *seed+1)
	key := cipherx.KeyFromPassphrase("esdds-repro")

	run := func(id int) {
		start := time.Now()
		switch id {
		case 1:
			fmt.Print(experiments.RunTable1(corpus).Render())
		case 2:
			t2, err := experiments.RunTable2(corpus, key)
			fail(err)
			fmt.Print(t2.Render())
		case 3:
			rows, err := experiments.RunTable3(corpus)
			fail(err)
			fmt.Print(experiments.RenderTable3(rows))
		case 4:
			t4, err := experiments.RunTable4(sample)
			fail(err)
			fmt.Print(t4.Render())
		case 5:
			t5, err := experiments.RunTable5(sample)
			fail(err)
			fmt.Print(t5.Render())
		}
		fmt.Printf("  [table %d in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *all {
		for id := 1; id <= 5; id++ {
			run(id)
		}
		fig, err := experiments.RunFigure5(sample)
		fail(err)
		fmt.Print(fig.Render())
		fmt.Println()
		res, err := experiments.RunRandomness(sample, key)
		fail(err)
		fmt.Print(res.Render())
		fmt.Println()
		rows, err := experiments.RunStorageTradeoff(sample, 4)
		fail(err)
		fmt.Print(experiments.RenderStorage(4, rows))
		return
	}
	if *table != 0 {
		if *table < 1 || *table > 5 {
			fmt.Fprintln(os.Stderr, "tables are 1-5")
			os.Exit(2)
		}
		run(*table)
	}
	if *figure != 0 {
		if *figure != 5 {
			fmt.Fprintln(os.Stderr, "only figure 5 carries data; figures 1-4 are diagrams/dataset extracts")
			os.Exit(2)
		}
		fig, err := experiments.RunFigure5(sample)
		fail(err)
		fmt.Print(fig.Render())
	}
	if *randomness {
		res, err := experiments.RunRandomness(sample, key)
		fail(err)
		fmt.Print(res.Render())
	}
	if *storage {
		rows, err := experiments.RunStorageTradeoff(sample, 4)
		fail(err)
		fmt.Print(experiments.RenderStorage(4, rows))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "esdds-repro:", err)
		os.Exit(1)
	}
}
