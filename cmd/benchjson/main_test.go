package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro/internal/sdds
BenchmarkNodeSearch/posting-8   	   57507	     20846 ns/op	    2504 B/op	      73 allocs/op
BenchmarkInsertIndexed/batched-8	    1200	    991216 ns/op	   4.00 rpcs/record
PASS
ok  	repro/internal/sdds	3.141s
`

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkNodeSearch/posting-8   	   57507	     20846 ns/op	    2504 B/op	      73 allocs/op")
	if !ok {
		t.Fatal("benchmark line not parsed")
	}
	if r.Name != "NodeSearch/posting" || r.Iterations != 57507 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 20846 || r.Metrics["allocs/op"] != 73 {
		t.Fatalf("metrics %+v", r.Metrics)
	}
	for _, junk := range []string{"", "PASS", "ok  	repro 1s", "goos: linux", "Benchmark 12"} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("parsed junk line %q", junk)
		}
	}
}

func TestRunStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(benchText), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var got []result
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Metrics["rpcs/record"] != 4 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestRunEmptyInputFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestMergeRequiresOut(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-merge"}, strings.NewReader(benchText), &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2: %s", code, stderr.String())
	}
}

// TestMergePreservesAbsentSeries is the regression the -merge flag
// exists for: a partial bench run must refresh its own entries without
// dropping series that only exist in the committed file.
func TestMergePreservesAbsentSeries(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_search.json")
	prev := []result{
		{Name: "PlacementNodes", Iterations: 999, Metrics: map[string]float64{"ns/op": 50}},
		{Name: "NodeSearch/posting", Iterations: 1, Metrics: map[string]float64{"ns/op": 99999}},
	}
	data, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-merge", "-out", out}, strings.NewReader(benchText), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	merged, err := loadPrev(out)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]result{}
	for _, r := range merged {
		byName[r.Name] = r
	}
	if len(merged) != 3 {
		t.Fatalf("merged %d series, want 3: %+v", len(merged), merged)
	}
	// Series absent from the run survives untouched.
	if byName["PlacementNodes"].Metrics["ns/op"] != 50 {
		t.Fatalf("absent series clobbered: %+v", byName["PlacementNodes"])
	}
	// Series present in both is refreshed by the run.
	if byName["NodeSearch/posting"].Iterations != 57507 {
		t.Fatalf("stale entry not refreshed: %+v", byName["NodeSearch/posting"])
	}
	// Genuinely new series appended.
	if byName["InsertIndexed/batched"].Metrics["rpcs/record"] != 4 {
		t.Fatalf("new series missing: %+v", byName["InsertIndexed/batched"])
	}
	// Prev order preserved, new names after.
	if merged[0].Name != "PlacementNodes" || merged[2].Name != "InsertIndexed/batched" {
		t.Fatalf("merge order wrong: %v, %v, %v", merged[0].Name, merged[1].Name, merged[2].Name)
	}
}

func TestMergeMissingFileActsAsEmpty(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fresh.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-merge", "-out", out}, strings.NewReader(benchText), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	merged, err := loadPrev(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("merged %d series, want 2", len(merged))
	}
}

// TestMergeRefusesCorruptHistory: merging over an unreadable file must
// error out rather than silently replacing the history.
func TestMergeRefusesCorruptHistory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_search.json")
	if err := os.WriteFile(out, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-merge", "-out", out}, strings.NewReader(benchText), &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{not json" {
		t.Fatal("failed merge modified the target file")
	}
}

func writeBaseline(t *testing.T, results []result) string {
	t.Helper()
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinTolerance(t *testing.T) {
	// Baseline 20000 ns/op vs run 20846: +4.2%, within the default 25%.
	base := writeBaseline(t, []result{
		{Name: "NodeSearch/posting", Iterations: 1, Metrics: map[string]float64{"ns/op": 20000}},
		{Name: "InsertIndexed/batched", Iterations: 1, Metrics: map[string]float64{"ns/op": 991216}},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gate", base}, strings.NewReader(benchText), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, stderr.String(), stdout.String())
	}
	if !strings.Contains(stdout.String(), "ok   NodeSearch/posting ns/op") {
		t.Fatalf("missing comparison line in %q", stdout.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// Baseline 10000 ns/op vs run 20846: +108%, far past 25%.
	base := writeBaseline(t, []result{
		{Name: "NodeSearch/posting", Iterations: 1, Metrics: map[string]float64{"ns/op": 10000}},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gate", base}, strings.NewReader(benchText), &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stdout %q", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "FAIL NodeSearch/posting ns/op") {
		t.Fatalf("missing FAIL line in %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "regressed") {
		t.Fatalf("missing regression summary in %q", stderr.String())
	}
}

func TestGateToleranceFlag(t *testing.T) {
	// +4.2% over baseline fails a 2% tolerance.
	base := writeBaseline(t, []result{
		{Name: "NodeSearch/posting", Iterations: 1, Metrics: map[string]float64{"ns/op": 20000}},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gate", base, "-tolerance", "0.02"}, strings.NewReader(benchText), &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stdout %q", code, stdout.String())
	}
}

func TestGateSkipsUnsharedSeries(t *testing.T) {
	// Baseline names nothing in the run: nothing compared is an error,
	// not a silent pass.
	base := writeBaseline(t, []result{
		{Name: "SomethingElse", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gate", base}, strings.NewReader(benchText), &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stdout %q", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "no gated metrics in common") {
		t.Fatalf("missing empty-intersection error in %q", stdout.String())
	}
}

func TestGateExcludesMergeAndOut(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gate", "x.json", "-out", "y.json"}, strings.NewReader(benchText), &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
