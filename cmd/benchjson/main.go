// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array, one object per benchmark result line:
//
//	go test -run '^$' -bench . -benchmem ./internal/sdds | benchjson
//
// emits
//
//	[
//	  {"name":"NodeSearch/posting","iterations":57507,
//	   "metrics":{"ns/op":20846,"B/op":2504,"allocs/op":73}},
//	  ...
//	]
//
// Custom b.ReportMetric units (e.g. "rpcs/record") appear alongside the
// standard ones. Non-benchmark lines (goos/pkg headers, PASS/ok) are
// ignored, so the tool can sit at the end of any bench pipeline. The
// output lands in BENCH_*.json files that later revisions diff against.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
