// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array, one object per benchmark result line:
//
//	go test -run '^$' -bench . -benchmem ./internal/sdds | benchjson
//
// emits
//
//	[
//	  {"name":"NodeSearch/posting","iterations":57507,
//	   "metrics":{"ns/op":20846,"B/op":2504,"allocs/op":73}},
//	  ...
//	]
//
// Custom b.ReportMetric units (e.g. "rpcs/record") appear alongside the
// standard ones. Non-benchmark lines (goos/pkg headers, PASS/ok) are
// ignored, so the tool can sit at the end of any bench pipeline.
//
// With -merge -out FILE, results are merged into FILE by benchmark
// name instead of replacing it wholesale: series present in FILE but
// absent from this run are preserved. That lets a partial bench run
// (e.g. only the search benchmarks) refresh its own entries without
// silently dropping everyone else's history from BENCH_*.json.
//
// With -gate FILE, the run is compared against the baseline in FILE
// instead of being emitted: for every benchmark present in both, each
// gated metric (default the time-like ones, ns/op and ns/entry) must
// not exceed baseline*(1+tolerance). Any regression prints a FAIL line
// and the exit status is 1 — the CI regression gate for the posting
// index and search hot paths.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}

func parseAll(in io.Reader) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// mergeResults overlays fresh onto prev by name: fresh entries win,
// prev entries with no fresh counterpart survive. Order is prev's,
// with genuinely new names appended in run order.
func mergeResults(prev, fresh []result) []result {
	byName := make(map[string]result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	out := make([]result, 0, len(prev)+len(fresh))
	seen := make(map[string]bool, len(prev))
	for _, r := range prev {
		if nr, ok := byName[r.Name]; ok {
			out = append(out, nr)
		} else {
			out = append(out, r)
		}
		seen[r.Name] = true
	}
	for _, r := range fresh {
		if !seen[r.Name] {
			out = append(out, r)
			seen[r.Name] = true
		}
	}
	return out
}

// loadPrev reads an existing benchjson file. A missing file is an
// empty history; a present-but-unparsable one is an error — merging
// over a file we cannot read would destroy it.
func loadPrev(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var prev []result
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, fmt.Errorf("existing %s is not a benchjson array: %w", path, err)
	}
	return prev, nil
}

// gate compares fresh results against a baseline: for every benchmark
// name present in both, each metric named in gateMetrics must satisfy
// fresh <= base*(1+tolerance). It returns the number of regressions,
// writing one line per comparison to w. Benchmarks or metrics absent
// from either side are skipped — the gate covers the intersection, so
// a partial bench run gates only what it measured.
func gate(w io.Writer, baseline, fresh []result, gateMetrics []string, tolerance float64) int {
	base := make(map[string]result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	regressions, compared := 0, 0
	for _, r := range fresh {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		for _, m := range gateMetrics {
			fv, fok := r.Metrics[m]
			bv, bok := b.Metrics[m]
			if !fok || !bok || bv <= 0 {
				continue
			}
			compared++
			delta := fv/bv - 1
			status := "ok  "
			if fv > bv*(1+tolerance) {
				status = "FAIL"
				regressions++
			}
			fmt.Fprintf(w, "%s %s %s: %.4g vs baseline %.4g (%+.1f%%, limit +%.0f%%)\n",
				status, r.Name, m, fv, bv, delta*100, tolerance*100)
		}
	}
	if compared == 0 {
		fmt.Fprintln(w, "FAIL no gated metrics in common between run and baseline")
		return 1
	}
	return regressions
}

func encode(w io.Writer, results []result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fl.SetOutput(stderr)
	merge := fl.Bool("merge", false, "merge results by name into -out instead of overwriting")
	out := fl.String("out", "", "write JSON to this file instead of stdout (atomic)")
	gateFile := fl.String("gate", "", "compare run against this baseline file and exit 1 on regression")
	tolerance := fl.Float64("tolerance", 0.25, "allowed fractional regression in -gate mode")
	gateMetrics := fl.String("metrics", "ns/op,ns/entry", "comma-separated metrics gated in -gate mode")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *merge && *out == "" {
		fmt.Fprintln(stderr, "benchjson: -merge requires -out FILE")
		return 2
	}
	if *gateFile != "" && (*merge || *out != "") {
		fmt.Fprintln(stderr, "benchjson: -gate cannot be combined with -merge/-out")
		return 2
	}

	results, err := parseAll(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin")
		return 1
	}

	if *gateFile != "" {
		baseline, err := loadPrev(*gateFile)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if len(baseline) == 0 {
			fmt.Fprintf(stderr, "benchjson: baseline %s missing or empty\n", *gateFile)
			return 1
		}
		var metrics []string
		for _, m := range strings.Split(*gateMetrics, ",") {
			if m = strings.TrimSpace(m); m != "" {
				metrics = append(metrics, m)
			}
		}
		if n := gate(stdout, baseline, results, metrics, *tolerance); n > 0 {
			fmt.Fprintf(stderr, "benchjson: %d metric(s) regressed beyond %.0f%%\n", n, *tolerance*100)
			return 1
		}
		return 0
	}

	if *merge {
		prev, err := loadPrev(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		results = mergeResults(prev, results)
	}

	if *out == "" {
		if err := encode(stdout, results); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		return 0
	}
	tmp, err := os.CreateTemp(filepath.Dir(*out), ".benchjson-*")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if err := encode(tmp, results); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if err := os.Rename(tmp.Name(), *out); err != nil {
		os.Remove(tmp.Name())
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
