GO ?= go

.PHONY: check build vet test race bench fuzz clean

# Tier-1 gate: everything must build, vet clean, and pass under the
# race detector (the chaos suites are required to be race-clean).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz pass over every fuzz target (30s each).
fuzz:
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=30s ./internal/transport
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=30s ./internal/transport
	$(GO) test -fuzz=FuzzDecodePutReq -fuzztime=30s ./internal/sdds
	$(GO) test -fuzz=FuzzDecodeSearchReq -fuzztime=30s ./internal/sdds
	$(GO) test -fuzz=FuzzDecodeNodeImage -fuzztime=30s ./internal/sdds

clean:
	$(GO) clean -testcache
