GO ?= go

.PHONY: check build vet test race bench bench-smoke bench-json bench-gate cover fuzz clean soak soak-smoke soak-overload soak-growth

# Tier-1 gate: everything must build, vet clean, pass under the race
# detector (the chaos suites are required to be race-clean), and every
# benchmark must still execute (one iteration each).
check: build vet race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Every benchmark runs one iteration — a cheap guard against benchmarks
# rotting while the code under them moves.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Machine-readable search/insert performance snapshot. Merged (not
# overwritten) into the committed BENCH_search.json so a partial bench
# run refreshes its own series without dropping everyone else's history.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkNodeSearch|BenchmarkIndexPut|BenchmarkInsertIndexed|BenchmarkPlacementNodes|BenchmarkTransport' \
		-benchmem ./internal/sdds ./internal/transport | $(GO) run ./cmd/benchjson -merge -out BENCH_search.json
	@cat BENCH_search.json

# Benchmark regression gate: re-measure the search + index-maintenance
# hot paths and compare ns/op (and ns/entry) against the committed
# BENCH_search.json baseline. Any series more than 25% slower than its
# baseline fails the target — the CI guard that keeps the flat posting
# index honest. -benchtime=0.3s keeps the gate under a minute on a
# 1-vCPU CI runner while staying stable enough for a 25% band.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkNodeSearch|BenchmarkIndexPut' \
		-benchtime=0.3s ./internal/sdds | $(GO) run ./cmd/benchjson -gate BENCH_search.json

# Cluster-level soak: open-loop load generator driving a REAL
# multi-process TCP cluster (spawned esdds-node daemons) through LH*
# growth, then auditing every acknowledged record back and enforcing
# the SLO gates. Results merge into BENCH_cluster.json by profile; a
# failing gate or any record loss exits non-zero and leaves the
# baseline untouched. soak-smoke is the ~30s CI-sized run; soak is the
# full million-record profile.
BIN_DIR ?= bin

.PHONY: soak-bins
soak-bins:
	$(GO) build -o $(BIN_DIR)/esdds-node ./cmd/esdds-node
	$(GO) build -o $(BIN_DIR)/esdds-soak ./cmd/esdds-soak

soak-smoke: soak-bins
	$(BIN_DIR)/esdds-soak -profile smoke -cluster proc \
		-node-bin $(BIN_DIR)/esdds-node -out BENCH_cluster.json

soak: soak-bins
	$(BIN_DIR)/esdds-soak -profile full -cluster proc \
		-node-bin $(BIN_DIR)/esdds-node -out BENCH_cluster.json

# Overload soak: 3 shedding daemons driven at ~3x their measured
# capacity. Gates prove graceful degradation (DESIGN.md §13): goodput
# stays above a floor, retry budgets bound attempts/op, shed requests
# are accounted as backpressure (not errors), the read-back audit loses
# nothing that was acknowledged, and zero self-healing repairs fire —
# saturation must never read as node death.
soak-overload: soak-bins
	$(BIN_DIR)/esdds-soak -profile overload -cluster proc \
		-node-bin $(BIN_DIR)/esdds-node -out BENCH_cluster.json

# Growth-chaos soak: a durable in-process cluster under load while the
# harness kills one node every few seconds and the self-healing
# supervisor revives it. Kills that land mid-split/merge leave the
# two-phase handoff journalled in-flight (DESIGN.md §14); gates prove
# the supervisor rolls every one forward, the read-back audit loses no
# acknowledged record, and no migration is left dangling. Runs in-
# process (-cluster mem) because only memory nodes can be killed and
# revived by the harness — no -node-bin needed.
soak-growth: soak-bins
	$(BIN_DIR)/esdds-soak -profile growth-chaos -cluster mem \
		-out BENCH_cluster.json

# Coverage profile with per-package totals (the `ok ... coverage: N%`
# lines) plus the overall statement total. cover.out is the machine
# artifact: CI uploads it and enforces the esdds ratchet against it.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1

# Short fuzz pass over every fuzz target (30s each).
fuzz:
	$(GO) test -fuzz='^FuzzReadFrame$$' -fuzztime=30s ./internal/transport
	$(GO) test -fuzz='^FuzzFrameRoundTrip$$' -fuzztime=30s ./internal/transport
	$(GO) test -fuzz='^FuzzReadFrameV2$$' -fuzztime=30s ./internal/transport
	$(GO) test -fuzz='^FuzzFrameV2RoundTrip$$' -fuzztime=30s ./internal/transport
	$(GO) test -fuzz=FuzzDecodePutReq -fuzztime=30s ./internal/sdds
	$(GO) test -fuzz=FuzzDecodeSearchReq -fuzztime=30s ./internal/sdds
	$(GO) test -fuzz=FuzzDecodeNodeImage -fuzztime=30s ./internal/sdds
	$(GO) test -fuzz=FuzzIndexOps -fuzztime=30s ./internal/sdds
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=30s ./internal/wal

clean:
	$(GO) clean -testcache
