// Phonebook: the paper's motivating workload at scale. Loads a
// synthetic SF directory into an encrypted store with Stage-2 lossy
// encoding, searches surnames over ciphertext, and reports the
// false-positive behaviour the paper's Tables 4/5 study — including how
// short Asian surnames (YU, WU, LEE, …) dominate the false positives
// and how client-side filtering removes them.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/esdds"
	"repro/internal/phonebook"
)

func main() {
	var (
		n     = flag.Int("n", 20000, "directory size")
		nodes = flag.Int("nodes", 8, "storage nodes")
		codes = flag.Int("codes", 16, "Stage-2 symbol encodings")
	)
	flag.Parse()

	entries := phonebook.Generate(*n, 20060403)
	corpus := phonebook.Names(entries)

	cluster := esdds.NewMemoryCluster(*nodes)
	defer cluster.Close()
	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("phonebook"), esdds.Config{
		ChunkSize:   2,
		Chunkings:   2,
		SymbolCodes: *codes, // lossy compression → frequency flattening
	}, corpus)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	start := time.Now()
	for _, e := range entries {
		if err := store.Insert(ctx, e.RID(), []byte(e.Name)); err != nil {
			log.Fatal(err)
		}
	}
	loadTime := time.Since(start)
	st := store.Stats()
	fmt.Printf("loaded %d records in %v (%.0f rec/s)\n", *n, loadTime.Round(time.Millisecond),
		float64(*n)/loadTime.Seconds())
	fmt.Printf("record file: %d buckets, index file: %d buckets across %d nodes\n\n",
		st.RecordBuckets, st.IndexBuckets, *nodes)

	queries := []string{"SCHWARZ", "MARTINEZ", "NGUYEN", "WONG", "LEE", "YU"}
	fmt.Printf("%-10s %8s %8s %8s %10s\n", "query", "raw", "true", "FPs", "latency")
	for _, q := range queries {
		if len(q) < store.MinQueryLen() {
			fmt.Printf("%-10s   (below minimum query length %d)\n", q, store.MinQueryLen())
			continue
		}
		t0 := time.Now()
		raw, err := store.SearchRecords(ctx, []byte(q), esdds.SearchFast)
		if err != nil {
			log.Fatal(err)
		}
		lat := time.Since(t0)
		trueHits := 0
		for _, r := range raw {
			if bytes.Contains(r.Content, []byte(q)) {
				trueHits++
			}
		}
		fmt.Printf("%-10s %8d %8d %8d %10v\n", q, len(raw), trueHits, len(raw)-trueHits,
			lat.Round(time.Microsecond))
	}

	fmt.Println("\nclient-side filtering gives exact results:")
	recs, err := store.SearchRecordsFiltered(ctx, []byte("SCHWARZ"), esdds.SearchFast)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range recs {
		if i >= 5 {
			fmt.Printf("  … and %d more\n", len(recs)-5)
			break
		}
		fmt.Printf("  %d  %s\n", r.RID, r.Content)
	}
	fmt.Printf("  %d exact hit(s) for SCHWARZ\n", len(recs))
}
