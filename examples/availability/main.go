// Availability: the LH*RS substrate in action. Four live LH* buckets
// hold (encrypted) records; their snapshots are kept under Reed–Solomon
// parity on two parity sites with delta-based updates. Two sites then
// fail simultaneously, and a spare reconstructs both bucket images
// bit-exactly from the survivors — the high-availability story of
// LH*RS [LMS05] that the paper names as its storage substrate.
package main

import (
	"fmt"
	"log"

	"repro/internal/cipherx"
	"repro/internal/lhstar"
	"repro/internal/phonebook"
	"repro/internal/rs"
)

func main() {
	const m, k = 4, 2
	group, err := rs.NewBucketGroup(m, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parity group: %d data buckets + %d parity sites (survives any %d failures)\n\n", m, k, k)

	// Four LH* buckets receiving sealed records; every update pushes the
	// new snapshot through a delta-based parity update.
	sealer := cipherx.NewRecordCipher(cipherx.KeyFromPassphrase("availability-demo"))
	buckets := make([]*lhstar.Bucket, m)
	for i := range buckets {
		buckets[i] = lhstar.NewBucket(uint64(i), 2)
	}
	entries := phonebook.Generate(200, 42)
	for _, e := range entries {
		rid := e.RID()
		i := int(rid % m)
		sealed := sealer.Seal([]byte(e.Phone), []byte(e.Name))
		buckets[i].Put(rid, sealed)
		if err := group.Update(i, buckets[i].Snapshot()); err != nil {
			log.Fatal(err)
		}
	}
	ok, err := group.Scrub()
	if err != nil || !ok {
		log.Fatalf("scrub failed: %v %v", ok, err)
	}
	fmt.Printf("loaded %d sealed records across %d buckets; parity scrub clean\n", len(entries), m)
	for i, b := range buckets {
		fmt.Printf("  bucket %d: %d records\n", i, b.Len())
	}

	// Disaster: data site 1 and parity site 0 fail at once.
	fmt.Println("\n*** sites lost: data bucket 1, parity site 0 ***")
	shards := group.Shards()
	shards[1] = nil   // data bucket 1
	shards[m+0] = nil // parity site 0
	if err := group.RecoverShards(shards); err != nil {
		log.Fatal(err)
	}
	restored, err := lhstar.RestoreBucket(shards[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spare site reconstructed bucket 1: %d records (was %d)\n",
		restored.Len(), buckets[1].Len())

	// Prove the payloads survived: decrypt a few reconstructed records.
	fmt.Println("\ndecrypting reconstructed records:")
	shown := 0
	restored.Scan(func(key uint64, sealed []byte) bool {
		for _, e := range entries {
			if e.RID() == key {
				name, err := sealer.Open([]byte(e.Phone), sealed)
				if err != nil {
					log.Fatalf("rid %d: %v", key, err)
				}
				fmt.Printf("  %s  %s\n", e.Phone, name)
				shown++
				break
			}
		}
		return shown < 5
	})
}
