// Availability: the full resilience stack end to end. A six-node
// in-process multicomputer runs an encrypted workload over a lossy
// network (seeded fault injection; retries with exponential backoff
// mask every drop). An LH*RS guardian then puts each node's bucket
// inventory under Reed–Solomon parity, two nodes die mid-flight,
// best-effort search degrades gracefully and names exactly the dead
// sites, and the guardian reconstructs both nodes bit-exactly from
// parity — the high-availability story of LH*RS [LMS05] that the paper
// names as its storage substrate, driven through the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/esdds"
	"repro/internal/phonebook"
	"repro/internal/transport"
)

func main() {
	const (
		nodes = 6
		k     = 2 // parity shards: any k simultaneous node failures survive
		seed  = 42
	)
	cluster := esdds.NewMemoryCluster(nodes,
		esdds.WithFaultInjection(seed),
		esdds.WithRetry(transport.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   500 * time.Microsecond,
			MaxDelay:    5 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.2,
		}),
		esdds.WithRetrySeed(seed),
	)
	defer cluster.Close()

	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("availability-demo"), esdds.Config{
		ChunkSize:     4,
		Chunkings:     2,
		MaxBucketLoad: 8,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Phase 1 — insert sealed records through a lossy network: 15% of
	// sends are dropped, 10% delayed. The retry middleware masks all of
	// it; the client sees zero errors.
	cluster.Faults().SetDefault(transport.Fault{
		Drop:      0.15,
		DelayProb: 0.10,
		Delay:     200 * time.Microsecond,
	})
	entries := phonebook.Generate(150, seed)
	for _, e := range entries {
		if err := store.Insert(ctx, e.RID(), []byte(e.Name)); err != nil {
			log.Fatalf("insert through lossy network failed: %v", err)
		}
	}
	var dropped, retries uint64
	for _, st := range cluster.Faults().Stats() {
		dropped += st.Dropped
	}
	for _, st := range cluster.RetryStats() {
		retries += st.Retries
	}
	fmt.Printf("loaded %d sealed records over a lossy network: %d sends dropped, %d retries, 0 client errors\n",
		len(entries), dropped, retries)

	query := []byte(entries[0].Name[:7])
	baseline, err := store.Search(ctx, query, esdds.SearchVerified)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline search %q: %d hits\n\n", query, len(baseline))

	// Phase 2 — establish the recovery point: the guardian pulls every
	// node's bucket image under Reed–Solomon parity (m data + k parity).
	cluster.Faults().ClearFaults()
	guard, err := cluster.Guardian(k)
	if err != nil {
		log.Fatal(err)
	}
	if err := guard.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guardian synced: %d node images + %d parity shards (survives any %d failures)\n\n",
		nodes, k, k)

	// Phase 3 — disaster: node 1 crashes outright, node 4 is partitioned.
	fmt.Println("*** nodes lost: 1 (crashed), 4 (partitioned) ***")
	if err := cluster.KillNode(1); err != nil {
		log.Fatal(err)
	}
	if err := cluster.KillNode(4); err != nil {
		log.Fatal(err)
	}
	cluster.Faults().Blackout(4)

	hits, failed, err := store.SearchBestEffort(ctx, query, esdds.SearchVerified)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best-effort search: %d/%d hits, failed nodes reported: %v\n", len(hits), len(baseline), failed)

	// Phase 4 — recovery: spare nodes take over the dead IDs, the
	// guardian rebuilds their buckets from the survivors plus parity.
	cluster.Faults().Restore(4)
	for _, id := range failed {
		if err := cluster.ReviveNode(id); err != nil {
			log.Fatal(err)
		}
	}
	if err := guard.Recover(ctx, failed...); err != nil {
		log.Fatal(err)
	}
	healed, err := store.Search(ctx, query, esdds.SearchVerified)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nguardian recovered nodes %v from parity\n", failed)
	fmt.Printf("full search after recovery: %d hits (baseline %d)\n", len(healed), len(baseline))

	// Prove the payloads survived end to end: decrypt recovered records.
	fmt.Println("\ndecrypting recovered records:")
	for i, e := range entries[:5] {
		got, err := store.Get(ctx, e.RID())
		if err != nil {
			log.Fatalf("rid %d: %v", e.RID(), err)
		}
		fmt.Printf("  %d: %s\n", i, got)
	}
}
