// Tuning: the paper's central trade-off, measured live. Sweeps the
// Stage-2 encoding count and reports, for each setting, how random the
// index looks (χ² of the encoded stream — lower is harder to attack)
// against how many false positives searches suffer (higher cost). This
// is Tables 4/5 reduced to a decision aid: pick the leftmost column
// whose false-positive rate you can afford.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"

	"repro/esdds"
	"repro/internal/phonebook"
)

func main() {
	var (
		n = flag.Int("n", 3000, "directory size")
	)
	flag.Parse()

	entries := phonebook.Generate(*n, 20060403)
	corpus := phonebook.Names(entries)
	queries := make([][]byte, 0, len(entries))
	for _, e := range entries {
		queries = append(queries, []byte(e.LastName()))
	}

	fmt.Printf("sweep: %d records, querying every surname, chunk size 2, two chunkings\n\n", *n)
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "encodings", "raw hits", "true hits", "false pos", "FP rate")

	ctx := context.Background()
	for _, codes := range []int{8, 16, 32, 64, 128} {
		cluster := esdds.NewMemoryCluster(4)
		store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("tuning"), esdds.Config{
			ChunkSize:   2,
			Chunkings:   2,
			SymbolCodes: codes,
		}, corpus)
		if err != nil {
			log.Fatal(err)
		}
		for i, e := range entries {
			if err := store.Insert(ctx, uint64(i), []byte(e.Name)); err != nil {
				log.Fatal(err)
			}
		}
		var raw, trueHits int
		for _, q := range queries {
			if len(q) < store.MinQueryLen() {
				continue
			}
			rids, err := store.Search(ctx, q, esdds.SearchFast)
			if err != nil {
				log.Fatal(err)
			}
			raw += len(rids)
			for _, rid := range rids {
				if bytes.Contains([]byte(entries[rid].Name), q) {
					trueHits++
				}
			}
		}
		fp := raw - trueHits
		fmt.Printf("%-10d %12d %12d %12d %9.2f%%\n", codes, raw, trueHits, fp,
			100*float64(fp)/float64(raw))
		cluster.Close()
	}

	fmt.Println("\nno Stage-2 encoding (exact index, maximal leakage):")
	cluster := esdds.NewMemoryCluster(4)
	defer cluster.Close()
	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("tuning"), esdds.Config{
		ChunkSize: 2,
		Chunkings: 2,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range entries {
		if err := store.Insert(ctx, uint64(i), []byte(e.Name)); err != nil {
			log.Fatal(err)
		}
	}
	var raw, trueHits int
	for _, q := range queries {
		if len(q) < store.MinQueryLen() {
			continue
		}
		rids, err := store.Search(ctx, q, esdds.SearchFast)
		if err != nil {
			log.Fatal(err)
		}
		raw += len(rids)
		for _, rid := range rids {
			if bytes.Contains([]byte(entries[rid].Name), q) {
				trueHits++
			}
		}
	}
	fmt.Printf("%-10s %12d %12d %12d %9.2f%%\n", "none", raw, trueHits, raw-trueHits,
		100*float64(raw-trueHits)/float64(raw))
}
