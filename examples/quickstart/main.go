// Quickstart: open an encrypted searchable store on a simulated
// 4-node multicomputer, insert records, and search them by content —
// the minimal end-to-end use of the public esdds API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/esdds"
)

func main() {
	// A simulated multicomputer: 4 storage nodes in this process. All
	// distributed machinery (LH* addressing, forwarding, splits,
	// scatter-gather search) runs exactly as over a network.
	cluster := esdds.NewMemoryCluster(4)
	defer cluster.Close()

	// All cryptographic keys derive from this client-held master key;
	// the storage nodes never see it.
	store, err := esdds.Open(cluster, esdds.KeyFromPassphrase("quickstart-demo"), esdds.Config{
		ChunkSize:       4, // index chunks of 4 symbols (Stage 1)
		Chunkings:       2, // two shifted chunkings per record (§2.5)
		DispersionSites: 2, // each chunk split over 2 sites (Stage 3)
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	people := map[uint64]string{
		4154090007: "SCHWARZ THOMAS",
		4154090008: "TSUI PETER",
		4154090009: "LITWIN WITOLD",
		4154090010: "SCHWARTZ ANNA MARIA",
	}
	for rid, name := range people {
		if err := store.Insert(ctx, rid, []byte(name)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted %d records (minimum searchable substring: %d symbols)\n",
		len(people), store.MinQueryLen())

	// Substring search runs in parallel on every node, over ciphertext.
	recs, err := store.SearchRecordsFiltered(ctx, []byte("SCHWARZ"), esdds.SearchFast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsearch \"SCHWARZ\":")
	for _, r := range recs {
		fmt.Printf("  %d  %s\n", r.RID, r.Content)
	}

	// Key-based lookup fetches and decrypts one record.
	content, err := store.Get(ctx, 4154090009)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nget 4154090009: %s\n", content)

	// Deleting removes the record and all its index pieces.
	if err := store.Delete(ctx, 4154090008); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Get(ctx, 4154090008); err == esdds.ErrNotFound {
		fmt.Println("delete 4154090008: gone")
	}
}
