// Securecluster: the full network stack on loopback TCP. Starts real
// esdds-node daemons in-process, opens a store over sockets, and walks
// through the paper's Figure-3 flow: strong encryption at the record
// store, index pieces dispersed over sites, parallel encrypted search,
// and a demonstration that a curious node (or a client with the wrong
// key) learns nothing.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/esdds"
)

func main() {
	cluster, err := esdds.StartLocalTCPCluster(5)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("started %d TCP storage nodes on loopback\n", cluster.Nodes())

	key := esdds.KeyFromPassphrase("secure-cluster-demo")
	store, err := esdds.Open(cluster, key, esdds.Config{
		ChunkSize:       4,
		Chunkings:       2,
		DispersionSites: 4, // Figure 3's layout: each chunking over 4 sites
		Matrix:          esdds.MatrixRandom,
		MaxBucketLoad:   8, // small buckets force visible file growth
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	people := []string{
		"SCHWARZ THOMAS", "TSUI PETER", "LITWIN WITOLD",
		"WONG MEI LING", "MARTINEZ MARIA", "ANDERSON JOHN",
		"CHAN WAI MING", "NGUYEN TUAN ANH", "JOHNSON KAREN",
		"LEE MING", "GARCIA CARMEN", "RODRIGUEZ JUAN",
		"CHEUNG SIU WAI", "HERNANDEZ ELENA", "OBRIEN SEAN",
		"KIM MIN", "TRAN MINH", "LOPEZ ROSARIO",
		"WILSON MARGARET", "THOMPSON DANIEL",
	}
	for i, name := range people {
		if err := store.Insert(ctx, uint64(4154090000+i), []byte(name)); err != nil {
			log.Fatal(err)
		}
	}
	st := store.Stats()
	fmt.Printf("inserted %d records over TCP; record file %d buckets (%d splits), index file %d buckets (%d splits), %d IAMs\n\n",
		len(people), st.RecordBuckets, st.RecordSplits, st.IndexBuckets, st.IndexSplits, st.IAMs)

	fmt.Println("parallel encrypted search for \"MARTINEZ\" across all nodes:")
	recs, err := store.SearchRecordsFiltered(ctx, []byte("MARTINEZ"), esdds.SearchExact)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Printf("  %d  %s\n", r.RID, r.Content)
	}

	// What a node owner — or any client without the key — can do:
	// nothing. A store opened with a different key cannot decrypt
	// records, and its queries encrypt differently, so they match
	// nothing.
	mallory, err := esdds.Open(cluster, esdds.KeyFromPassphrase("not-the-key"), esdds.Config{
		ChunkSize:       4,
		Chunkings:       2,
		DispersionSites: 4,
		Matrix:          esdds.MatrixRandom,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mallory.Get(ctx, 4154090004); err != nil {
		fmt.Printf("\nwrong-key Get: %v\n", err)
	}
	rids, err := mallory.Search(ctx, []byte("MARTINEZ"), esdds.SearchFast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong-key search for MARTINEZ: %d hit(s)\n", len(rids))
}
